//! Property tests over the telemetry primitives: histogram merge algebra,
//! quantile monotonicity, shard-merge count conservation, and the
//! journal's read-time sort+cap edge cases.

use proptest::prelude::*;
use revtr_telemetry::{Fnv, Histogram, Journal, MetricsRegistry, RequestRecord, SpanRecord};

fn fp(h: &Histogram) -> u64 {
    let mut f = Fnv::new();
    h.hash_into(&mut f);
    f.finish()
}

fn from_values(vs: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vs {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is commutative: a∪b == b∪a, down to the fingerprint.
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..80),
        b in proptest::collection::vec(0u64..1_000_000, 0..80),
    ) {
        let (ha, hb) = (from_values(&a), from_values(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(fp(&ab), fp(&ba));
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ab.quantile(0.5), ba.quantile(0.5));
    }

    /// merge is associative: (a∪b)∪c == a∪(b∪c).
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX, 0..60),
        b in proptest::collection::vec(0u64..u64::MAX, 0..60),
        c in proptest::collection::vec(0u64..u64::MAX, 0..60),
    ) {
        let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(fp(&left), fp(&right));
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_quantiles_are_monotone_in_q(
        vs in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let h = from_values(&vs);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = h.min();
        for q in qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < previous {last}");
            last = v;
        }
        prop_assert_eq!(h.quantile(0.0), h.min());
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// Splitting a stream across registry shards (worker threads) and
    /// merging the snapshot never loses counts: total count and sum match
    /// a single-histogram run exactly.
    #[test]
    fn record_never_loses_counts_across_shard_merges(
        vs in proptest::collection::vec(0u64..5_000_000, 1..200),
        workers in 1usize..8,
    ) {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for w in 0..workers {
                let chunk: Vec<u64> = vs
                    .iter()
                    .copied()
                    .skip(w)
                    .step_by(workers)
                    .collect();
                let reg = &reg;
                s.spawn(move || {
                    for v in chunk {
                        reg.record("lat", v);
                    }
                });
            }
        });
        let whole = from_values(&vs);
        let snap = reg.snapshot();
        let merged = snap.histogram("lat").expect("recorded");
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.sum(), whole.sum());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert_eq!(fp(merged), fp(&whole));
    }

    /// The journal's rendered output is a pure function of the record
    /// *set*: any insertion order gives the same lines, any cap keeps the
    /// sorted prefix.
    #[test]
    fn journal_sort_cap_is_insertion_order_independent(
        // Each raw key encodes (dst, src); duplicates are expected and
        // exercise the tie-break path.
        raw in proptest::collection::vec(0u32..400, 0..40),
        cap in 0usize..50,
    ) {
        let keys: Vec<(u32, u32)> = raw.iter().map(|&k| (k % 50, k / 50)).collect();
        let fwd = Journal::new(cap);
        let rev = Journal::new(cap);
        for &(dst, src) in &keys {
            fwd.push(rec(dst, src));
        }
        for &(dst, src) in keys.iter().rev() {
            rev.push(rec(dst, src));
        }
        prop_assert!(fwd.lines().len() <= cap);
        // Order-independence is guaranteed while the population fits the
        // 8×cap insert-time memory bound (the documented contract; every
        // campaign scale in this workspace stays within it). Beyond it,
        // later pushes are dropped and the retained subset legitimately
        // depends on insertion order.
        if keys.len() <= cap.saturating_mul(8) {
            prop_assert_eq!(fwd.lines(), rev.lines());
            prop_assert_eq!(fwd.fingerprint(), rev.fingerprint());
            // The retained subset is exactly the sorted prefix: an
            // uncapped journal over the same records, truncated to cap.
            let uncapped = Journal::new(keys.len());
            for &(dst, src) in &keys {
                uncapped.push(rec(dst, src));
            }
            let expected: Vec<String> = uncapped.lines().into_iter().take(cap).collect();
            prop_assert_eq!(fwd.lines(), expected);
        }
    }
}

fn rec(dst: u32, src: u32) -> RequestRecord {
    RequestRecord {
        dst,
        src,
        status: "Complete",
        virtual_us: 100 + u64::from(dst),
        spans: vec![SpanRecord {
            stage: "rr_step",
            depth: 0,
            t_us: 0,
            dur_us: 100,
            fields: vec![("probes", u64::from(src))],
        }],
    }
}

#[test]
fn journal_cap_zero_renders_nothing_but_stores_nothing_extra() {
    // cap 0: the hard insert bound is 8·0 = 0, so nothing is retained and
    // the rendered journal is empty — a valid "journalling off" setting.
    let j = Journal::new(0);
    for d in 0..10 {
        j.push(rec(d, 1));
    }
    assert_eq!(j.len(), 0);
    assert!(j.is_empty());
    assert!(j.lines().is_empty());
    assert_eq!(j.fingerprint(), Fnv::new().finish());
}

#[test]
fn journal_cap_larger_than_population_keeps_everything() {
    let j = Journal::new(1000);
    for d in (0..25u32).rev() {
        j.push(rec(d, 2));
    }
    let lines = j.lines();
    assert_eq!(lines.len(), 25);
    // Sorted ascending by (src, dst) even though pushed descending.
    for (i, line) in lines.iter().enumerate() {
        assert!(line.contains(&format!("\"dst\":{i},")), "line {i}: {line}");
    }
}

#[test]
fn journal_duplicate_keys_are_kept_and_tie_broken_by_json() {
    // Two distinct records under the same (dst, src) key — e.g. a request
    // retried after a fault — are both retained; the sort tie-breaks on
    // the rendered JSON so their order is deterministic.
    let a = Journal::new(10);
    let b = Journal::new(10);
    let mut slow = rec(4, 4);
    slow.virtual_us = 999_999;
    for j in [&a, &b] {
        if std::ptr::eq(j, &a) {
            j.push(rec(4, 4));
            j.push(slow.clone());
        } else {
            j.push(slow.clone());
            j.push(rec(4, 4));
        }
        j.push(rec(4, 4)); // exact duplicate record
    }
    assert_eq!(a.lines(), b.lines());
    assert_eq!(a.lines().len(), 3);
    assert!(a.lines()[0] <= a.lines()[1] && a.lines()[1] <= a.lines()[2]);
    // With a cap of 1 the same single record survives from either order.
    let capped_a = Journal::new(1);
    capped_a.push(slow.clone());
    capped_a.push(rec(4, 4));
    let capped_b = Journal::new(1);
    capped_b.push(rec(4, 4));
    capped_b.push(slow);
    assert_eq!(capped_a.lines(), capped_b.lines());
}
