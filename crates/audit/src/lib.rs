//! # revtr-audit — oracle-checked soundness of stitched reverse paths
//!
//! The paper's central claim (§4.4, Table 3) is that revtr 2.0 trades
//! coverage for *trustworthy* reverse paths: every stitched hop is backed
//! by a measurement or an intradomain-symmetry assumption, never by
//! interdomain guessing. This crate turns that claim into a per-hop check:
//! it replays each [`revtr::StitchTrace`] entry against the simulator's
//! ground-truth oracle and grades it with a typed [`Verdict`].
//!
//! The checks are *differential* — they re-derive each hop from the raw
//! provenance the engine recorded (probe nonces and churn epochs, atlas
//! trace snapshots, ip2as decision inputs) without consulting any engine
//! state, so a stitching bug cannot vouch for itself:
//!
//! * RR-revealed hops must appear among the reply-leg stamps obtained by
//!   re-running the recorded probe under its original nonce and epochs
//!   ([`revtr_netsim::oracle::Oracle::replay_rr_reply_stamps`]);
//! * atlas joins must connect true aliases (same router, or the two ends
//!   of one /30 link); atlas suffix hops must be plausibly consecutive on
//!   a true router path;
//! * symmetry assumptions must comply with the recorded policy, their
//!   decision inputs must survive ip2as recomputation, and the oracle
//!   reports whether each assumption was *truly* intradomain;
//! * interdomain aborts must be consistent with their recorded inputs.
//!
//! A [`Verdict::PolicyViolation`] means the engine used (or misrecorded)
//! an interdomain symmetry assumption under the `IntradomainOnly` policy —
//! which must never occur; `ci.sh` gates on it.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

use revtr::{Evidence, RevtrResult, StitchEnd, SymmetryPolicy};
use revtr_aliasing::Ip2As;
use revtr_netsim::oracle::Oracle;
use revtr_netsim::{Addr, AsId, Sim};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The audit's grade for one stitch-trace entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The evidence re-derives the hop exactly.
    Sound,
    /// The hop rests on a symmetry assumption the policy permits; the
    /// oracle reports whether the assumed link was truly intradomain.
    SoundByAssumption {
        /// True when both ends of the assumed link belong to one AS in
        /// the simulator's ground truth (ip2as may disagree at borders).
        truly_intradomain: bool,
    },
    /// The evidence does not support the hop.
    Unsound {
        /// What the evidence, replayed, would have justified.
        expected: String,
        /// What the result actually contains.
        got: String,
    },
    /// An interdomain symmetry assumption was used — or its recorded
    /// decision inputs misrepresent what ip2as actually says — under the
    /// `IntradomainOnly` policy. Must never occur.
    PolicyViolation {
        /// Why the policy check fired.
        reason: String,
    },
}

impl Verdict {
    /// True for `Unsound` or `PolicyViolation`.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Verdict::Unsound { .. } | Verdict::PolicyViolation { .. }
        )
    }
}

/// One graded stitch-trace entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopAudit {
    /// Hop index within the result (== the trace's entry index; the
    /// terminal abort check uses the index one past the last hop).
    pub index: usize,
    /// Evidence kind label (see [`Evidence::kind`]; the terminal abort
    /// check reports as `"abort"`, structural failures as `"structure"`).
    pub kind: String,
    /// The grade.
    pub verdict: Verdict,
}

/// The full audit of one measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceAudit {
    /// Destination of the audited measurement.
    pub dst: Addr,
    /// Source of the audited measurement.
    pub src: Addr,
    /// One grade per trace entry (plus the terminal abort check).
    pub findings: Vec<HopAudit>,
}

impl TraceAudit {
    /// True when no finding is `Unsound` or `PolicyViolation`.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| !f.verdict.is_failure())
    }

    /// The failing findings.
    pub fn failures(&self) -> impl Iterator<Item = &HopAudit> {
        self.findings.iter().filter(|f| f.verdict.is_failure())
    }
}

/// Per-evidence-kind verdict tally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindTally {
    /// `Sound` verdicts.
    pub sound: u64,
    /// `SoundByAssumption` verdicts.
    pub by_assumption: u64,
    /// Of the assumptions, those the oracle found truly intradomain.
    pub truly_intradomain: u64,
    /// `Unsound` verdicts.
    pub unsound: u64,
    /// `PolicyViolation` verdicts.
    pub policy_violations: u64,
}

impl KindTally {
    fn add(&mut self, v: &Verdict) {
        match v {
            Verdict::Sound => self.sound += 1,
            Verdict::SoundByAssumption { truly_intradomain } => {
                self.by_assumption += 1;
                if *truly_intradomain {
                    self.truly_intradomain += 1;
                }
            }
            Verdict::Unsound { .. } => self.unsound += 1,
            Verdict::PolicyViolation { .. } => self.policy_violations += 1,
        }
    }

    /// All verdicts tallied.
    pub fn total(&self) -> u64 {
        self.sound + self.by_assumption + self.unsound + self.policy_violations
    }
}

/// Aggregated audit results over a campaign: a per-evidence-kind
/// soundness table.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Verdict tallies keyed by evidence kind.
    pub per_kind: BTreeMap<String, KindTally>,
    /// Measurements audited.
    pub results: u64,
    /// Measurements with at least one failing verdict.
    pub dirty_results: u64,
}

impl AuditSummary {
    /// Fold one trace audit into the summary.
    pub fn add(&mut self, audit: &TraceAudit) {
        self.results += 1;
        if !audit.is_clean() {
            self.dirty_results += 1;
        }
        for f in &audit.findings {
            self.per_kind
                .entry(f.kind.clone())
                .or_default()
                .add(&f.verdict);
        }
    }

    /// Total `Unsound` verdicts across all kinds.
    pub fn total_unsound(&self) -> u64 {
        self.per_kind.values().map(|t| t.unsound).sum()
    }

    /// Total `PolicyViolation` verdicts across all kinds.
    pub fn total_policy_violations(&self) -> u64 {
        self.per_kind.values().map(|t| t.policy_violations).sum()
    }

    /// Every failing verdict — unsound plus policy-violating — across
    /// all kinds. This is the number the hostile-scenario conformance
    /// gate pins to zero on hardened arms: a fabrication profile that
    /// smuggles even one wrong hop past the countermeasures shows up
    /// here.
    pub fn total_failures(&self) -> u64 {
        self.total_unsound() + self.total_policy_violations()
    }

    /// True when the campaign carries zero failing verdicts — the `ci.sh`
    /// hard gate.
    pub fn is_clean(&self) -> bool {
        self.total_unsound() == 0 && self.total_policy_violations() == 0
    }

    /// Render the per-evidence-kind soundness table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
            "evidence kind", "sound", "assumed", "intradom.", "unsound", "policy"
        ));
        for (kind, t) in &self.per_kind {
            out.push_str(&format!(
                "{:<22} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
                kind, t.sound, t.by_assumption, t.truly_intradomain, t.unsound, t.policy_violations
            ));
        }
        out.push_str(&format!(
            "audited {} measurements, {} with failures\n",
            self.results, self.dirty_results
        ));
        out
    }
}

/// The auditor: ground-truth oracle plus an independently reconstructed
/// ip2as mapping for the differential symmetry checks.
pub struct Auditor<'s> {
    oracle: Oracle<'s>,
    ip2as: Ip2As,
}

impl<'s> Auditor<'s> {
    /// Auditor over `sim`'s ground truth. `registry_only_ip2as` must match
    /// the audited engine's `EngineConfig::registry_only_ip2as` so the
    /// differential recomputation models the same mapping.
    pub fn new(sim: &'s Sim, registry_only_ip2as: bool) -> Auditor<'s> {
        let ip2as = if registry_only_ip2as {
            Ip2As::registry_only(sim)
        } else {
            Ip2As::new(sim)
        };
        Auditor {
            oracle: sim.oracle(),
            ip2as,
        }
    }

    /// The ground-truth oracle in use.
    pub fn oracle(&self) -> &Oracle<'s> {
        &self.oracle
    }

    /// Replay the ip2as interdomain decision from scratch.
    fn recompute_interdomain(&self, cur: Addr, penult: Addr) -> (Option<AsId>, Option<AsId>, bool) {
        let cur_as = self.ip2as.map(cur);
        let penult_as = self.ip2as.map(penult);
        let interdomain = match (penult_as, cur_as) {
            (Some(x), Some(y)) => x != y,
            _ => true,
        };
        (cur_as, penult_as, interdomain)
    }

    /// Does the oracle consider the `cur → penult` link truly
    /// intradomain? (ip2as is deliberately imperfect at AS borders, so
    /// this can disagree with a policy-compliant decision.)
    fn truly_intradomain(&self, cur: Addr, penult: Addr) -> bool {
        match (self.oracle.true_as_of(cur), self.oracle.true_as_of(penult)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    fn addr_str(addr: Option<Addr>) -> String {
        addr.map(|a| a.to_string())
            .unwrap_or_else(|| "*".to_string())
    }

    /// Grade one stitch-trace entry against the hop it justifies.
    fn grade(&self, r: &RevtrResult, i: usize, e: &Evidence) -> Verdict {
        let hop = &r.hops[i];
        match e {
            Evidence::Destination => {
                if hop.addr == Some(r.dst) {
                    Verdict::Sound
                } else {
                    Verdict::Unsound {
                        expected: format!("destination {}", r.dst),
                        got: Self::addr_str(hop.addr),
                    }
                }
            }
            Evidence::RecordRoute { prov } | Evidence::SpoofedRecordRoute { prov } => {
                let Some(addr) = hop.addr else {
                    return Verdict::Unsound {
                        expected: "an RR-revealed address".to_string(),
                        got: "*".to_string(),
                    };
                };
                let replay = self.oracle.replay_rr_reply_stamps(
                    prov.sender,
                    prov.claimed,
                    prov.dst,
                    prov.nonce,
                    prov.fwd_epoch,
                    prov.rep_epoch,
                );
                match replay {
                    Some(stamps) if stamps.contains(&addr) => Verdict::Sound,
                    Some(stamps) => Verdict::Unsound {
                        expected: format!(
                            "a member of the replayed reply-leg stamps {stamps:?} \
                             ({} -> {} claiming {})",
                            prov.sender, prov.dst, prov.claimed
                        ),
                        got: addr.to_string(),
                    },
                    None => Verdict::Unsound {
                        expected: format!(
                            "a replayable RR probe {} -> {} claiming {}",
                            prov.sender, prov.dst, prov.claimed
                        ),
                        got: format!("replay produced no reply (hop {addr})"),
                    },
                }
            }
            Evidence::AtlasIntersection { joined, .. } => {
                let Some(addr) = hop.addr else {
                    return Verdict::Unsound {
                        expected: "an alias-join address".to_string(),
                        got: "*".to_string(),
                    };
                };
                if self.oracle.same_router(*joined, addr) || self.oracle.link_coupled(*joined, addr)
                {
                    Verdict::Sound
                } else {
                    Verdict::Unsound {
                        expected: format!("a true alias (or /30 peer) of {joined}"),
                        got: addr.to_string(),
                    }
                }
            }
            Evidence::TrToSource { .. } => {
                // A hop copied from an atlas trace suffix must be
                // plausibly consecutive with the preceding visible hop; a
                // `*` on either side genuinely hides the routers between,
                // so such pairs are vacuously consistent.
                let Some(addr) = hop.addr else {
                    return Verdict::Sound;
                };
                let Some(prev) = i.checked_sub(1).and_then(|p| r.hops.get(p)) else {
                    return Verdict::Unsound {
                        expected: "a preceding hop to continue from".to_string(),
                        got: format!("suffix hop {addr} at path head"),
                    };
                };
                let Some(prev_addr) = prev.addr else {
                    return Verdict::Sound;
                };
                if self.oracle.plausibly_consecutive(prev_addr, addr) {
                    Verdict::Sound
                } else {
                    Verdict::Unsound {
                        expected: format!("a hop consecutive with {prev_addr} on a true path"),
                        got: addr.to_string(),
                    }
                }
            }
            Evidence::Timestamp { tested_from } => {
                let Some(addr) = hop.addr else {
                    return Verdict::Unsound {
                        expected: "a TS-confirmed adjacency".to_string(),
                        got: "*".to_string(),
                    };
                };
                if self.oracle.plausibly_consecutive(*tested_from, addr) {
                    Verdict::Sound
                } else {
                    Verdict::Unsound {
                        expected: format!("a true adjacency of {tested_from}"),
                        got: addr.to_string(),
                    }
                }
            }
            Evidence::AssumedSymmetric {
                cur,
                penult,
                cur_as,
                penult_as,
                interdomain,
                policy,
            } => {
                if hop.addr != Some(*penult) {
                    return Verdict::Unsound {
                        expected: format!("the recorded penultimate hop {penult}"),
                        got: Self::addr_str(hop.addr),
                    };
                }
                if *interdomain && *policy == SymmetryPolicy::IntradomainOnly {
                    return Verdict::PolicyViolation {
                        reason: format!(
                            "interdomain assumption {cur} -> {penult} accepted under \
                             IntradomainOnly"
                        ),
                    };
                }
                let (re_cur, re_penult, re_inter) = self.recompute_interdomain(*cur, *penult);
                if (re_cur, re_penult, re_inter) != (*cur_as, *penult_as, *interdomain) {
                    return Verdict::PolicyViolation {
                        reason: format!(
                            "recorded decision inputs ({cur_as:?}, {penult_as:?}, \
                             interdomain={interdomain}) disagree with ip2as recomputation \
                             ({re_cur:?}, {re_penult:?}, interdomain={re_inter})"
                        ),
                    };
                }
                Verdict::SoundByAssumption {
                    truly_intradomain: self.truly_intradomain(*cur, *penult),
                }
            }
        }
    }

    /// Grade the terminal abort decision (when one was recorded).
    fn grade_abort(
        &self,
        cur: Addr,
        penult: Addr,
        cur_as: Option<AsId>,
        penult_as: Option<AsId>,
    ) -> Verdict {
        let (re_cur, re_penult, re_inter) = self.recompute_interdomain(cur, penult);
        if (re_cur, re_penult) != (cur_as, penult_as) {
            return Verdict::PolicyViolation {
                reason: format!(
                    "abort inputs ({cur_as:?}, {penult_as:?}) disagree with ip2as \
                     recomputation ({re_cur:?}, {re_penult:?})"
                ),
            };
        }
        if !re_inter {
            return Verdict::PolicyViolation {
                reason: format!(
                    "abort recorded for {cur} -> {penult}, but ip2as maps both \
                     to {re_cur:?} (intradomain)"
                ),
            };
        }
        Verdict::Sound
    }

    /// Audit one measurement's stitch trace.
    pub fn audit(&self, r: &RevtrResult) -> TraceAudit {
        let mut findings = Vec::with_capacity(r.trace.entries.len() + 1);
        if r.trace.entries.len() != r.hops.len() {
            findings.push(HopAudit {
                index: 0,
                kind: "structure".to_string(),
                verdict: Verdict::Unsound {
                    expected: format!("{} trace entries (one per hop)", r.hops.len()),
                    got: format!("{}", r.trace.entries.len()),
                },
            });
            return TraceAudit {
                dst: r.dst,
                src: r.src,
                findings,
            };
        }
        for (i, e) in r.trace.entries.iter().enumerate() {
            findings.push(HopAudit {
                index: i,
                kind: e.kind().to_string(),
                verdict: self.grade(r, i, e),
            });
        }
        if let Some(StitchEnd::AbortInterdomain {
            cur,
            penult,
            cur_as,
            penult_as,
        }) = r.trace.end
        {
            findings.push(HopAudit {
                index: r.hops.len(),
                kind: "abort".to_string(),
                verdict: self.grade_abort(cur, penult, cur_as, penult_as),
            });
        }
        TraceAudit {
            dst: r.dst,
            src: r.src,
            findings,
        }
    }

    /// Audit a whole campaign and aggregate the per-kind table.
    pub fn audit_all<'r>(
        &self,
        results: impl IntoIterator<Item = &'r RevtrResult>,
    ) -> AuditSummary {
        let mut summary = AuditSummary::default();
        for r in results {
            summary.add(&self.audit(r));
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr::{EngineConfig, RevtrSystem};
    use revtr_atlas::select_atlas_probes;
    use revtr_netsim::SimConfig;
    use revtr_probing::Prober;
    use revtr_vpselect::{Heuristics, IngressDb};
    use std::sync::Arc;

    fn system(sim: &Sim) -> RevtrSystem<'_> {
        let prober = Prober::new(sim);
        let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
        let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
        let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
        let pool = select_atlas_probes(sim, 100, 6);
        let mut cfg = EngineConfig::revtr2();
        cfg.atlas_size = 40;
        RevtrSystem::new(prober, cfg, vps, ingress, pool)
    }

    fn dests(sim: &Sim, n: usize) -> Vec<Addr> {
        sim.topo()
            .prefixes
            .iter()
            .filter_map(|pe| {
                sim.host_addrs(pe.id)
                    .find(|&a| sim.behavior().host_rr_responsive(a))
            })
            .take(n)
            .collect()
    }

    #[test]
    fn small_campaign_audits_clean() {
        let sim = Sim::build(SimConfig::tiny(), 1);
        let system = system(&sim);
        let auditor = Auditor::new(&sim, false);
        let src = sim.topo().vp_sites[0].host;
        system.register_source(src);
        let mut summary = AuditSummary::default();
        let mut audited = 0;
        for dst in dests(&sim, 25) {
            if dst == src {
                continue;
            }
            let r = system.measure(dst, src);
            let audit = auditor.audit(&r);
            if let Some(f) = audit.failures().next() {
                panic!(
                    "{} -> {} hop {} ({}): {:?}",
                    r.dst, r.src, f.index, f.kind, f.verdict
                );
            }
            summary.add(&audit);
            audited += 1;
        }
        assert!(audited > 10, "campaign too small to be meaningful");
        assert!(summary.is_clean());
        assert!(
            summary.per_kind.contains_key("destination"),
            "every responsive measurement contributes a destination entry"
        );
        let table = summary.table();
        assert!(table.contains("evidence kind"));
    }

    #[test]
    fn tampered_hop_is_flagged_unsound() {
        let sim = Sim::build(SimConfig::tiny(), 1);
        let system = system(&sim);
        let auditor = Auditor::new(&sim, false);
        let src = sim.topo().vp_sites[0].host;
        system.register_source(src);
        // Find a result with an RR-revealed hop, then corrupt it.
        let mut tampered = None;
        for dst in dests(&sim, usize::MAX) {
            if dst == src {
                continue;
            }
            let r = system.measure(dst, src);
            let has_rr = r.trace.entries.iter().any(|e| {
                matches!(
                    e,
                    Evidence::RecordRoute { .. } | Evidence::SpoofedRecordRoute { .. }
                )
            });
            if has_rr {
                tampered = Some(r);
                break;
            }
        }
        let mut r = tampered.expect("some measurement uses record route");
        assert!(auditor.audit(&r).is_clean(), "untampered audit must pass");
        let idx = r
            .trace
            .entries
            .iter()
            .position(|e| {
                matches!(
                    e,
                    Evidence::RecordRoute { .. } | Evidence::SpoofedRecordRoute { .. }
                )
            })
            .expect("checked above");
        // An address that is no router's interface: the replayed stamps
        // cannot contain it.
        r.hops[idx].addr = Some(Addr(u32::MAX - 1));
        let audit = auditor.audit(&r);
        assert!(!audit.is_clean());
        assert!(audit
            .failures()
            .any(|f| matches!(f.verdict, Verdict::Unsound { .. })));
    }

    #[test]
    fn forged_interdomain_assumption_is_a_policy_violation() {
        let sim = Sim::build(SimConfig::tiny(), 1);
        let auditor = Auditor::new(&sim, false);
        let vp0 = sim.topo().vp_sites[0].host;
        let vp1 = sim.topo().vp_sites[1].host;
        let r = RevtrResult {
            dst: vp1,
            src: vp0,
            status: revtr::Status::Complete,
            hops: vec![
                revtr::RevtrHop {
                    addr: Some(vp1),
                    method: revtr::HopMethod::Destination,
                    suspicious_gap_before: false,
                },
                revtr::RevtrHop {
                    addr: Some(vp0),
                    method: revtr::HopMethod::AssumedSymmetric,
                    suspicious_gap_before: false,
                },
            ],
            stats: revtr::RevtrStats::default(),
            trace: revtr::StitchTrace {
                entries: vec![
                    Evidence::Destination,
                    Evidence::AssumedSymmetric {
                        cur: vp1,
                        penult: vp0,
                        cur_as: auditor.ip2as.map(vp1),
                        penult_as: auditor.ip2as.map(vp0),
                        interdomain: true,
                        policy: SymmetryPolicy::IntradomainOnly,
                    },
                ],
                end: None,
            },
        };
        let audit = auditor.audit(&r);
        assert!(audit
            .failures()
            .any(|f| matches!(f.verdict, Verdict::PolicyViolation { .. })));
    }

    #[test]
    fn misaligned_trace_is_structurally_unsound() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let auditor = Auditor::new(&sim, false);
        let r = RevtrResult {
            dst: Addr(1),
            src: Addr(2),
            status: revtr::Status::Stuck,
            hops: vec![revtr::RevtrHop {
                addr: Some(Addr(1)),
                method: revtr::HopMethod::Destination,
                suspicious_gap_before: false,
            }],
            stats: revtr::RevtrStats::default(),
            trace: revtr::StitchTrace::default(),
        };
        let audit = auditor.audit(&r);
        assert!(!audit.is_clean());
        assert_eq!(audit.findings.len(), 1);
        assert_eq!(audit.findings[0].kind, "structure");
    }
}
