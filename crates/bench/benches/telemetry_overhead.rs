//! Telemetry overhead: the same warm-cache measurement hot path with the
//! tracing subsystem disabled (the default), enabled with full
//! journalling, and enabled with 1-in-8 journal sampling. The disabled
//! arm is the zero-cost baseline the subsystem promises; the enabled arms
//! price the span bookkeeping, registry updates, and journal writes.

use criterion::{criterion_group, criterion_main, Criterion};
use revtr::{EngineConfig, RevtrSystem};
use revtr_bench::BenchEnv;
use revtr_probing::{Prober, Telemetry, TelemetryConfig};
use std::hint::black_box;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    let (dst, src) = env.ctx.workload()[0];
    let arms: [(&str, Telemetry); 3] = [
        ("disabled", Telemetry::disabled()),
        ("enabled_full_journal", Telemetry::enabled()),
        (
            "enabled_sampled_journal",
            Telemetry::with_config(TelemetryConfig {
                journal_sample_every: 8,
                journal_cap: 256,
            }),
        ),
    ];
    let mut g = c.benchmark_group("telemetry_measure");
    for (name, telemetry) in arms {
        let prober = Prober::new(&env.ctx.sim).with_telemetry(telemetry);
        let sys: RevtrSystem<'_> =
            env.ctx
                .build_system(prober, EngineConfig::revtr2(), ingress.clone());
        sys.register_source(src);
        // Warm the measurement cache so every iteration prices the same
        // (cache-served) probe work and the arms differ only in tracing.
        // The journal's hard insert cap (8x the rendered cap) bounds its
        // memory across Criterion's unbounded iteration count.
        sys.measure(dst, src);
        g.bench_function(name, |b| b.iter(|| black_box(sys.measure(dst, src))));
    }
    g.finish();
}

criterion_group!(
    name = telemetry;
    config = Criterion::default().sample_size(10);
    targets = bench_telemetry_overhead,
);
criterion_main!(telemetry);
