//! Component micro-benches: the hot paths a revtr deployment pays for —
//! topology build, BGP route computation, forwarding walks, probe
//! primitives, atlas construction/lookup, ingress probing, and full
//! measurements under both engine configurations (the Table 4 ablation at
//! the per-measurement level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revtr::{EngineConfig, RevtrSystem};
use revtr_atlas::{select_atlas_probes, SourceAtlas};
use revtr_bench::BenchEnv;
use revtr_netsim::sim::PktMeta;
use revtr_netsim::{bgp, AsId, Sim, SimConfig};
use revtr_probing::Prober;
use revtr_vpselect::{ingress::probe_prefix, Heuristics};
use std::hint::black_box;

fn bench_topology_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_build");
    for (name, cfg) in [
        ("tiny", SimConfig::tiny()),
        ("era_2020", SimConfig::era_2020()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(Sim::build(cfg.clone(), 1)))
        });
    }
    g.finish();
}

fn bench_bgp_routes(c: &mut Criterion) {
    let sim = Sim::build(SimConfig::era_2020(), 1);
    c.bench_function("bgp_routes_to_one_dst", |b| {
        let mut salt = 0u64;
        b.iter(|| {
            salt += 1;
            black_box(bgp::routes_to(sim.topo(), AsId(7), salt))
        })
    });
}

fn bench_forwarding_walk(c: &mut Criterion) {
    let sim = Sim::build(SimConfig::era_2020(), 1);
    let vps = &sim.topo().vp_sites;
    let src = vps[0].host;
    let attach = sim.host_attach(src).expect("vp host");
    let dst = sim
        .host_addrs(sim.topo().prefixes[500].id)
        .next()
        .expect("hosts");
    // Warm the route caches, then measure the steady-state walk.
    sim.walk(attach, dst, &PktMeta::plain(src, 0));
    c.bench_function("fib_walk_warm", |b| {
        b.iter(|| black_box(sim.walk(attach, dst, &PktMeta::plain(src, 0))))
    });
}

fn bench_probe_primitives(c: &mut Criterion) {
    let sim = Sim::build(SimConfig::era_2020(), 1);
    let vps = &sim.topo().vp_sites;
    let dst = sim
        .host_addrs(sim.topo().prefixes[321].id)
        .find(|&a| sim.behavior().host_rr_responsive(a))
        .expect("responsive host");
    // Warm caches.
    sim.rr_ping(vps[0].host, dst, 0);
    let mut g = c.benchmark_group("probes");
    g.bench_function("ping", |b| b.iter(|| black_box(sim.ping(vps[0].host, dst))));
    let mut nonce = 0u64;
    g.bench_function("rr_ping", |b| {
        b.iter(|| {
            nonce += 1;
            black_box(sim.rr_ping(vps[0].host, dst, nonce))
        })
    });
    g.bench_function("spoofed_rr_ping", |b| {
        b.iter(|| {
            nonce += 1;
            black_box(sim.rr_ping_from(vps[1].host, vps[0].host, dst, nonce))
        })
    });
    g.bench_function("traceroute", |b| {
        b.iter(|| black_box(sim.traceroute(vps[0].host, dst, 3)))
    });
    g.finish();
}

fn bench_atlas_build_and_lookup(c: &mut Criterion) {
    let env = BenchEnv::new();
    let sim = &env.ctx.sim;
    let prober = Prober::new(sim);
    let source = sim.topo().vp_sites[0].host;
    let probes = select_atlas_probes(sim, 30, 2);
    c.bench_function("atlas_build_30_traces_with_rr_atlas", |b| {
        b.iter(|| black_box(SourceAtlas::build(&prober, source, &probes, true)))
    });
    let atlas = SourceAtlas::build(&prober, source, &probes, true);
    let probe_addr = atlas
        .indexed_addrs()
        .next()
        .map(|(a, _)| a)
        .expect("atlas indexed something");
    c.bench_function("atlas_lookup", |b| {
        b.iter(|| black_box(atlas.lookup(probe_addr)))
    });
}

fn bench_ingress_probe_one_prefix(c: &mut Criterion) {
    let env = BenchEnv::new();
    let prober = Prober::new(&env.ctx.sim);
    let vps = env.ctx.vps();
    let p = env.ctx.sampled_prefixes()[0];
    c.bench_function("ingress_probe_one_prefix", |b| {
        b.iter(|| black_box(probe_prefix(&prober, &vps, p, Heuristics::FULL)))
    });
}

fn bench_measure_ablation(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    let (dst, src) = env.ctx.workload()[0];
    let mut g = c.benchmark_group("measure");
    for (name, cfg) in EngineConfig::table4_ladder() {
        let prober = Prober::new(&env.ctx.sim);
        let sys: RevtrSystem<'_> = env.ctx.build_system(prober, cfg, ingress.clone());
        sys.register_source(src);
        g.bench_function(name, |b| b.iter(|| black_box(sys.measure(dst, src))));
    }
    g.finish();
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(10);
    targets =
        bench_topology_build,
        bench_bgp_routes,
        bench_forwarding_walk,
        bench_probe_primitives,
        bench_atlas_build_and_lookup,
        bench_ingress_probe_one_prefix,
        bench_measure_ablation,
);
criterion_main!(components);
