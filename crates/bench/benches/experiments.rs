//! One bench per paper table/figure: each measures the cost of
//! regenerating that artefact on a reduced-scale simulated Internet.

use criterion::{criterion_group, criterion_main, Criterion};
use revtr_bench::BenchEnv;
use revtr_eval::{
    ablation, accuracy, as_graph, asymmetry, atlas_study, dbr_violations, responsiveness,
    symmetry_assumption, traffic_eng, vp_selection,
};
use std::hint::black_box;

fn bench_table2_symmetry(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    c.bench_function("table2_symmetry_assumption", |b| {
        b.iter(|| black_box(symmetry_assumption::run(&env.ctx, &ingress, 30)))
    });
}

fn bench_table3_asgraph(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    c.bench_function("table3_as_graph", |b| {
        b.iter(|| black_box(as_graph::run(&env.ctx, &ingress)))
    });
}

fn bench_table4_packets(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    let workload = env.ctx.workload();
    c.bench_function("table4_packet_ablation", |b| {
        b.iter(|| black_box(ablation::run(&env.ctx, &ingress, &workload)))
    });
}

fn bench_fig5_accuracy(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    let workload = env.ctx.workload();
    c.bench_function("fig5_accuracy_coverage", |b| {
        b.iter(|| black_box(accuracy::run(&env.ctx, &ingress, &workload)))
    });
}

fn bench_fig6_table5_vp_selection(c: &mut Criterion) {
    let env = BenchEnv::new();
    c.bench_function("fig6_table5_vp_selection", |b| {
        b.iter(|| black_box(vp_selection::run(&env.ctx)))
    });
}

fn bench_fig7_traffic_eng(c: &mut Criterion) {
    let env = BenchEnv::new();
    c.bench_function("fig7_traffic_engineering", |b| {
        b.iter(|| black_box(traffic_eng::run(&env.ctx)))
    });
}

fn bench_fig8_table7_asymmetry(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    let workload = env.ctx.workload();
    c.bench_function("fig8_table7_asymmetry", |b| {
        b.iter(|| black_box(asymmetry::run(&env.ctx, &ingress, &workload)))
    });
}

fn bench_fig9_atlas(c: &mut Criterion) {
    let env = BenchEnv::new();
    let data = atlas_study::collect_split(&env.ctx, 20, 2);
    c.bench_function("fig9abc_atlas_selection", |b| {
        b.iter(|| black_box(atlas_study::run_selection_study(&data, 3)))
    });
    let ingress = env.ingress();
    c.bench_function("fig9d_staleness", |b| {
        b.iter(|| black_box(atlas_study::run_staleness(&env.ctx, &ingress)))
    });
}

fn bench_table6_fig11_responsiveness(c: &mut Criterion) {
    let scale = revtr_bench::bench_scale();
    c.bench_function("table6_fig11_responsiveness", |b| {
        b.iter(|| black_box(responsiveness::run(scale)))
    });
}

fn bench_appx_e_violations(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    c.bench_function("appxE_dbr_violations", |b| {
        b.iter(|| black_box(dbr_violations::run(&env.ctx, &ingress, 40)))
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table2_symmetry,
        bench_table3_asgraph,
        bench_table4_packets,
        bench_fig5_accuracy,
        bench_fig6_table5_vp_selection,
        bench_fig7_traffic_eng,
        bench_fig8_table7_asymmetry,
        bench_fig9_atlas,
        bench_table6_fig11_responsiveness,
        bench_appx_e_violations,
);
criterion_main!(experiments);
