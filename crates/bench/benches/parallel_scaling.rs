//! Parallel scaling of the measurement engine and its concurrency
//! primitives: the campaign loop at 1/2/4/8 workers over one shared
//! system (striped caches, single-flight route fills, per-thread clock),
//! plus micro-benches of the primitives themselves under contention.
//!
//! Wall-clock scaling is hardware-dependent — on a single-core container
//! the worker counts mostly measure the *overhead* of the concurrency
//! layer (lock convoys, duplicated compute), which is exactly what the
//! striping/single-flight work eliminates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revtr::EngineConfig;
use revtr_bench::BenchEnv;
use revtr_netsim::{Sim, SimConfig, StripedMap};
use revtr_probing::{Clock, Prober};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The full campaign loop: every workload pair measured once, fanned out
/// over `workers` threads against one shared system (steady state: caches
/// warm after the first iteration).
fn bench_campaign_workers(c: &mut Criterion) {
    let env = BenchEnv::new();
    let ingress = env.ingress();
    let prober = env.ctx.prober();
    let system = env
        .ctx
        .build_system(prober, EngineConfig::revtr2(), ingress);
    let workload = env.ctx.workload();
    for &(_, src) in &workload {
        system.register_source(src);
    }

    let mut g = c.benchmark_group("campaign_workers");
    g.sample_size(10);
    for workers in WORKER_COUNTS {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|s| {
                        for _ in 0..workers {
                            s.spawn(|| loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= workload.len() {
                                    break;
                                }
                                let (dst, src) = workload[i];
                                black_box(system.measure(dst, src));
                            });
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

/// Single-flight route fills: N threads all ask for the same fresh
/// (dst, salt) — exactly one valley-free BFS runs per iteration, the rest
/// wait on the flight.
fn bench_route_cache_single_flight(c: &mut Criterion) {
    let sim = Sim::build(SimConfig::tiny(), 1);
    let dst = sim.topo().ases[0].id;
    let mut g = c.benchmark_group("route_fill_single_flight");
    for workers in WORKER_COUNTS {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let salt = AtomicU64::new(0x1000);
                b.iter(|| {
                    let s = salt.fetch_add(1, Ordering::Relaxed);
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(|| {
                                black_box(sim.routes(dst, s));
                            });
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

/// Warm-cache lookups through the striped map under reader contention.
fn bench_striped_map_reads(c: &mut Criterion) {
    let map: Arc<StripedMap<u64, u64>> = Arc::new(StripedMap::new());
    for k in 0..1024u64 {
        map.insert(k, k * 3);
    }
    let mut g = c.benchmark_group("striped_map_read_1k");
    for workers in WORKER_COUNTS {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..workers {
                            let map = &map;
                            scope.spawn(move || {
                                let mut acc = 0u64;
                                for k in 0..1024u64 {
                                    acc ^= map.get(&(k.wrapping_mul(t as u64 + 1) & 1023)).unwrap();
                                }
                                black_box(acc);
                            });
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

/// The per-probe clock charge under contention: per-thread padded slots
/// mean no shared cache line on this path.
fn bench_clock_advance(c: &mut Criterion) {
    let sim = Sim::build(SimConfig::tiny(), 1);
    let clock = Clock::new();
    let mut g = c.benchmark_group("clock_advance_4k");
    for workers in WORKER_COUNTS {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let per_thread = 4096 / workers;
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..workers {
                            scope.spawn(|| {
                                for _ in 0..per_thread {
                                    clock.advance(0.125, &sim);
                                }
                            });
                        }
                    });
                    black_box(clock.now_ms());
                })
            },
        );
    }
    g.finish();
}

/// Counter traffic from many threads: padded per-category lines.
fn bench_counter_bumps(c: &mut Criterion) {
    let sim = Sim::build(SimConfig::tiny(), 1);
    let prober = Prober::new(&sim);
    let vp = sim.topo().vp_sites[0].host;
    let dst = sim.topo().vp_sites[1].host;
    c.bench_function("probe_ping_hot_path", |b| {
        b.iter(|| black_box(prober.ping(vp, dst)))
    });
}

criterion_group!(
    benches,
    bench_campaign_workers,
    bench_route_cache_single_flight,
    bench_striped_map_reads,
    bench_clock_advance,
    bench_counter_bumps
);
criterion_main!(benches);
