//! Shared fixtures for the revtr benchmarks.
//!
//! Every bench target regenerates one of the paper's tables or figures at
//! a reduced scale (Criterion measures the regeneration cost; the bench
//! *output values* are produced by `cargo run --example reproduce_all`).

use revtr_eval::context::{EvalContext, EvalScale};
use revtr_netsim::SimConfig;
use revtr_probing::Prober;
use revtr_vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

/// The scale used by bench targets: small enough for Criterion's repeated
/// sampling, large enough to exercise every code path.
pub fn bench_scale() -> EvalScale {
    let mut s = EvalScale::smoke();
    s.prefix_sample = 25;
    s.n_revtrs = 20;
    s.atlas_size = 25;
    s.atlas_pool = 100;
    s.n_sources = 2;
    s
}

/// A ready evaluation context at bench scale.
pub fn bench_context() -> EvalContext {
    EvalContext::new(SimConfig::tiny(), bench_scale())
}

/// A context plus its (expensive, shared) ingress database.
pub struct BenchEnv {
    /// The evaluation context.
    pub ctx: EvalContext,
}

impl BenchEnv {
    /// Build the environment once per bench target.
    pub fn new() -> BenchEnv {
        BenchEnv {
            ctx: bench_context(),
        }
    }

    /// Build the ingress DB with a fresh prober.
    pub fn ingress(&self) -> Arc<IngressDb> {
        let prober = Prober::new(&self.ctx.sim);
        Arc::new(IngressDb::build(
            &prober,
            &self.ctx.vps(),
            &self.ctx.sampled_prefixes(),
            Heuristics::FULL,
        ))
    }
}

impl Default for BenchEnv {
    fn default() -> Self {
        BenchEnv::new()
    }
}
