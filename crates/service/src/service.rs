//! The revtr 2.0 service (Appx. A): users request reverse traceroutes to
//! registered sources through an API façade; the service enforces rate
//! limits, bootstraps sources, archives results, and runs batch campaigns
//! on the deterministic virtual event loop.

use crate::store::ResultStore;
use crate::users::{ApiKey, RateLimits, UserDb, UserError};
use revtr::{LoopConfig, RevtrResult, RevtrSystem};
use revtr_netsim::{Addr, TraceResult};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-request tuning options (Appx. A: "the user can specify options to
/// tune the request, such as how stale traceroutes are allowed to be and
/// whether to run a forward traceroute after the Reverse Traceroute
/// completes").
#[derive(Clone, Copy, Debug, Serialize, Deserialize, Default)]
pub struct RequestOptions {
    /// Maximum acceptable age (virtual hours) of the atlas traceroute the
    /// measurement intersects; the source's atlas is refreshed first when
    /// it is older. `None` accepts any age.
    pub max_atlas_age_hours: Option<f64>,
    /// Also run a forward traceroute source → destination and return it
    /// alongside the reverse path.
    pub with_forward_traceroute: bool,
}

/// A served request: the reverse traceroute plus optional extras.
#[derive(Clone, Debug)]
pub struct ServedRequest {
    /// The reverse traceroute.
    pub reverse: RevtrResult,
    /// The complementary forward traceroute, when requested.
    pub forward: Option<TraceResult>,
}

/// Service-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Rejected by the user/limits layer.
    User(UserError),
    /// The source failed bootstrap: it cannot receive RR packets, so
    /// Reverse Traceroute cannot serve it (Appx. A).
    SourceBootstrapFailed,
    /// System overloaded (NDT-triggered measurements are best-effort).
    Overloaded,
    /// A batch-campaign measurement panicked; the campaign's results were
    /// discarded but the service itself remains usable.
    WorkerPanicked,
}

impl From<UserError> for ServiceError {
    fn from(e: UserError) -> Self {
        ServiceError::User(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::User(e) => write!(f, "{e}"),
            ServiceError::SourceBootstrapFailed => {
                write!(f, "source cannot receive record route packets")
            }
            ServiceError::Overloaded => write!(f, "system overloaded"),
            ServiceError::WorkerPanicked => write!(f, "batch campaign worker panicked"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// RAII permit for one in-flight NDT measurement: acquired against a cap,
/// released on drop — including the unwind path, so a panicking
/// measurement cannot leak its slot and permanently shrink the cap.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl<'a> InFlightGuard<'a> {
    fn acquire(counter: &'a AtomicUsize, cap: usize) -> Option<InFlightGuard<'a>> {
        if counter.fetch_add(1, Ordering::SeqCst) >= cap {
            counter.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(InFlightGuard(counter))
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The service façade over a [`RevtrSystem`].
pub struct RevtrService<'s> {
    system: RevtrSystem<'s>,
    users: UserDb,
    store: ResultStore,
    /// Soft cap on concurrent NDT-triggered measurements.
    ndt_load_cap: usize,
    ndt_in_flight: AtomicUsize,
}

impl<'s> RevtrService<'s> {
    /// Wrap a measurement system as a service.
    pub fn new(system: RevtrSystem<'s>) -> RevtrService<'s> {
        RevtrService {
            system,
            users: UserDb::new(),
            store: ResultStore::new(),
            ndt_load_cap: 64,
            ndt_in_flight: AtomicUsize::new(0),
        }
    }

    /// The underlying measurement system.
    pub fn system(&self) -> &RevtrSystem<'s> {
        &self.system
    }

    /// The user registry (admission layers build on it).
    pub(crate) fn users(&self) -> &UserDb {
        &self.users
    }

    /// The service's virtual "now" in hours.
    ///
    /// This is the *authoritative* time source for admission decisions:
    /// the simulator's `now_hours` lags true virtual time by whatever
    /// the clock has accumulated but not yet flushed (up to a virtual
    /// minute per clock slot), so a measurement charging probe time
    /// right before a day boundary can cross it without the simulator
    /// noticing until the next flush. Daily-quota day boundaries must
    /// land at the same instant on the single-shot and campaign paths
    /// regardless of flush state, so both paths — and any admission
    /// layer built on the service — use this helper.
    pub fn now_hours(&self) -> f64 {
        self.system.sim().now_hours() + self.system.prober().clock().pending_ms() / 3_600_000.0
    }

    /// The stuck-request watchdog report: served requests whose
    /// measurement overran the telemetry handle's virtual deadline,
    /// flagged with the deepest span open at the deadline. The service
    /// never kills a stuck measurement (a 10 s spoofed-batch stall still
    /// yields a usable path) — the watchdog makes the stall visible.
    pub fn watchdog_flags(&self) -> Vec<revtr_probing::WatchdogFlag> {
        self.system.watchdog_flags()
    }

    /// Same service with a different NDT concurrency cap (testing knob).
    pub fn with_ndt_cap(mut self, cap: usize) -> RevtrService<'s> {
        self.ndt_load_cap = cap;
        self
    }

    /// Vantage points the hardened engine has benched for spoof
    /// futility: their spoofed probes persistently vanish (the
    /// spoof-filter-rollout signature), so measurements stop waiting on
    /// them. Operator-facing — a growing list here means upstream
    /// networks are deploying source-address validation against the
    /// listed VPs. Sorted for deterministic reporting; empty when the
    /// engine runs unhardened or every VP's spoofed probes still land.
    pub fn quarantined_vps(&self) -> Vec<Addr> {
        let mut vps: Vec<Addr> = self
            .system
            .stopset()
            .quarantined_vps()
            .into_iter()
            .collect();
        vps.sort();
        vps
    }

    /// The result archive.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Register a user.
    pub fn add_user(&self, name: &str, limits: RateLimits) -> ApiKey {
        self.users.add_user(name, limits)
    }

    /// Register a source for a user: checks the host can receive RR
    /// packets, then bootstraps its traceroute atlas (and RR-atlas) — the
    /// ~15-minute process of Appx. A, in virtual time.
    pub fn add_source(&self, key: ApiKey, src: Addr) -> Result<(), ServiceError> {
        // Bootstrap check: send the source an RR ping from a VP; if the
        // source can't receive RR packets, Reverse Traceroute can't work.
        let vp = self.system.vps().first().copied();
        let reachable = match vp {
            Some(vp) => self.system.prober().rr_ping(vp, src).is_some(),
            None => false,
        };
        if !reachable {
            return Err(ServiceError::SourceBootstrapFailed);
        }
        self.users.add_source(key, src)?;
        self.system.register_source(src);
        Ok(())
    }

    /// One on-demand reverse traceroute request (REST/gRPC equivalent).
    pub fn request(&self, key: ApiKey, dst: Addr, src: Addr) -> Result<RevtrResult, ServiceError> {
        Ok(self
            .request_with(key, dst, src, RequestOptions::default())?
            .reverse)
    }

    /// An on-demand request with per-request options (Appx. A).
    pub fn request_with(
        &self,
        key: ApiKey,
        dst: Addr,
        src: Addr,
        opts: RequestOptions,
    ) -> Result<ServedRequest, ServiceError> {
        let tele = self.system.prober().telemetry();
        let permit = match self.users.admit(key, src, self.now_hours()) {
            Ok(p) => {
                tele.counter_add("service.request.admitted", 1);
                p
            }
            Err(e) => {
                tele.counter_add("service.request.rejected", 1);
                return Err(e.into());
            }
        };
        let reverse = {
            let result = self.system.measure(dst, src);
            match (
                opts.max_atlas_age_hours,
                result.stats.intersected_trace_age_h,
            ) {
                (Some(max), Some(age)) if age > max => {
                    // Too stale: refresh the atlas and re-measure.
                    self.system.refresh_atlas(src);
                    self.system.measure(dst, src)
                }
                _ => result,
            }
        };
        drop(permit);
        self.store.push(&reverse);
        let forward = if opts.with_forward_traceroute {
            self.system.prober().traceroute_fresh(src, dst)
        } else {
            None
        };
        Ok(ServedRequest { reverse, forward })
    }

    /// A batch campaign: measure every `(dst, src)` pair on the
    /// deterministic virtual event loop (topology-mapping use case, §3).
    /// `workers` is the loop's dispatch-worker count — scoped threads
    /// that step one round's control blocks concurrently; campaign
    /// results are invariant to it. Results are archived and returned in
    /// input order.
    pub fn batch(
        &self,
        key: ApiKey,
        pairs: &[(Addr, Addr)],
        workers: usize,
    ) -> Result<Vec<RevtrResult>, ServiceError> {
        // Admission: validate the user and sources up front.
        for &(_, src) in pairs {
            if !self.users.sources(key)?.contains(&src) {
                return Err(ServiceError::User(UserError::UnknownSource));
            }
        }
        // Charge the daily quota up front (campaigns are still subject to
        // per-user limits; the parallel-slot limit is replaced by the
        // dispatch quantum here).
        for &(_, src) in pairs {
            let permit = self.users.admit(key, src, self.now_hours())?;
            drop(permit);
        }
        let workers = workers.max(1).min(pairs.len().max(1));
        let tele = self.system.prober().telemetry();
        if tele.is_enabled() {
            tele.counter_add("service.batch.campaigns", 1);
            tele.record("service.batch.size", pairs.len() as u64);
            tele.record("service.batch.workers", workers as u64);
        }
        // Queue depth at admission is a pure function of the index, so
        // the recorded distribution is identical for any worker count
        // (and matches what the old thread pool recorded at claim time).
        for i in 0..pairs.len() {
            tele.record("service.batch.queue_depth", (pairs.len() - i) as u64);
        }
        // The loop thread owns the schedule; `workers` scoped threads
        // overlap each round's step execution. A panicking measurement
        // surfaces as a `ServiceError` instead of unwinding into the
        // caller with the campaign half-archived.
        let outcome = self
            .system
            .run_campaign(
                pairs,
                LoopConfig {
                    workers,
                    ..LoopConfig::parallel()
                },
            )
            .map_err(|_| ServiceError::WorkerPanicked)?;
        for r in &outcome.results {
            self.store.push(r);
        }
        Ok(outcome.results)
    }

    /// NDT hook (Appx. A): when a speed-test client measures against an
    /// M-Lab server, complement the forward traceroute with a reverse one —
    /// accepted or rejected based on system load.
    pub fn on_ndt_test(&self, client: Addr, server: Addr) -> Result<RevtrResult, ServiceError> {
        // RAII slot: released on every exit path, including a panicking
        // `measure` — a leaked slot would permanently shrink the cap.
        let tele = self.system.prober().telemetry();
        let Some(_slot) = InFlightGuard::acquire(&self.ndt_in_flight, self.ndt_load_cap) else {
            tele.counter_add("service.ndt.overloaded", 1);
            return Err(ServiceError::Overloaded);
        };
        tele.counter_add("service.ndt.accepted", 1);
        self.system.register_source(server);
        let r = self.system.measure(client, server);
        self.store.push(&r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_guard_enforces_cap_and_survives_panics() {
        let counter = AtomicUsize::new(0);
        let a = InFlightGuard::acquire(&counter, 2).expect("slot 1");
        let _b = InFlightGuard::acquire(&counter, 2).expect("slot 2");
        assert!(InFlightGuard::acquire(&counter, 2).is_none(), "cap hit");
        drop(a);
        assert_eq!(counter.load(Ordering::SeqCst), 1);

        // Regression: a panic while holding the slot must still release it
        // (the old fetch_add/fetch_sub pairing leaked it permanently).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = InFlightGuard::acquire(&counter, 2).expect("slot");
            panic!("measurement blew up");
        }));
        assert!(r.is_err());
        assert_eq!(counter.load(Ordering::SeqCst), 1, "slot leaked by panic");
    }
}
