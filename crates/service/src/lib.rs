//! # revtr-service — revtr 2.0 as a service (Appx. A)
//!
//! The paper operates revtr 2.0 as an open service: users register, add
//! their own hosts as sources (a ~15-minute bootstrap builds each source's
//! traceroute atlas), and request measurements through REST/gRPC APIs under
//! per-user rate limits; results are archived. This crate reproduces that
//! orchestration layer over [`revtr::RevtrSystem`]:
//!
//! * [`UserDb`] — users, API keys, parallel + daily rate limits,
//! * [`RevtrService`] — source bootstrap (with the RR-reachability check),
//!   on-demand requests, event-loop batch campaigns, and the
//!   NDT-triggered measurement hook,
//! * [`ResultStore`] — the archive (JSON import/export standing in for
//!   M-Lab's cloud storage).

#![warn(missing_docs)]

pub mod admission;
pub mod service;
pub mod store;
pub mod users;

pub use admission::{
    AdmissionPlan, ClassPolicy, ClassReport, LadderConfig, LevelTransition, OpenLoopOutcome,
    ShedReason, TimedRequest,
};
pub use service::{RequestOptions, RevtrService, ServedRequest, ServiceError};
pub use store::{ResultStore, StoreStats};
pub use users::{ApiKey, RateLimits, UserDb, UserError};
