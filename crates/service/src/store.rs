//! Result archival (Appx. A: "our system archives both user-driven and
//! NDT-based reverse traceroutes").

use parking_lot::Mutex;
use revtr::{RevtrResult, Status};
use revtr_netsim::Addr;

/// In-memory archive of measurement results with JSON export.
#[derive(Debug, Default)]
pub struct ResultStore {
    results: Mutex<Vec<RevtrResult>>,
}

/// Aggregate statistics over the archive.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Total archived measurements.
    pub total: usize,
    /// Completed paths.
    pub complete: usize,
    /// Aborted to avoid interdomain symmetry assumptions.
    pub aborted: usize,
    /// Unresponsive destinations.
    pub unresponsive: usize,
    /// Completed paths containing a symmetry assumption.
    pub with_assumption: usize,
}

impl ResultStore {
    /// Empty store.
    pub fn new() -> ResultStore {
        ResultStore::default()
    }

    /// Archive one result.
    pub fn push(&self, r: &RevtrResult) {
        self.results.lock().push(r.clone());
    }

    /// Number of archived results.
    pub fn len(&self) -> usize {
        self.results.lock().len()
    }

    /// True when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All results for a (destination, source) pair.
    pub fn lookup(&self, dst: Addr, src: Addr) -> Vec<RevtrResult> {
        self.results
            .lock()
            .iter()
            .filter(|r| r.dst == dst && r.src == src)
            .cloned()
            .collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let g = self.results.lock();
        let mut s = StoreStats {
            total: g.len(),
            ..Default::default()
        };
        for r in g.iter() {
            match r.status {
                Status::Complete => {
                    s.complete += 1;
                    if r.has_assumption() {
                        s.with_assumption += 1;
                    }
                }
                Status::AbortedInterdomain => s.aborted += 1,
                Status::Unresponsive => s.unresponsive += 1,
                Status::Stuck => {}
            }
        }
        s
    }

    /// Export the archive as JSON (the M-Lab cloud-storage stand-in).
    pub fn export_json(&self) -> String {
        serde_json::to_string(&*self.results.lock()).expect("results serialize")
    }

    /// Import a JSON archive (replaces current contents).
    pub fn import_json(&self, json: &str) -> Result<usize, serde_json::Error> {
        let v: Vec<RevtrResult> = serde_json::from_str(json)?;
        let n = v.len();
        *self.results.lock() = v;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr::{RevtrHop, RevtrStats};

    fn result(status: Status) -> RevtrResult {
        RevtrResult {
            dst: Addr(1),
            src: Addr(2),
            status,
            hops: vec![RevtrHop {
                addr: Some(Addr(1)),
                method: revtr::HopMethod::Destination,
                suspicious_gap_before: false,
            }],
            stats: RevtrStats::default(),
            trace: revtr::StitchTrace::default(),
        }
    }

    #[test]
    fn stats_and_lookup() {
        let store = ResultStore::new();
        store.push(&result(Status::Complete));
        store.push(&result(Status::AbortedInterdomain));
        store.push(&result(Status::Unresponsive));
        let s = store.stats();
        assert_eq!(s.total, 3);
        assert_eq!(s.complete, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.unresponsive, 1);
        assert_eq!(store.lookup(Addr(1), Addr(2)).len(), 3);
        assert_eq!(store.lookup(Addr(9), Addr(2)).len(), 0);
    }

    #[test]
    fn json_roundtrip() {
        let store = ResultStore::new();
        store.push(&result(Status::Complete));
        let json = store.export_json();
        let store2 = ResultStore::new();
        assert_eq!(store2.import_json(&json).expect("valid json"), 1);
        assert_eq!(store2.stats().complete, 1);
    }
}
