//! User registry and per-user rate limiting (Appx. A).
//!
//! The real system keeps a manually maintained user database with two
//! rate-limit parameters: maximum parallel measurements and maximum
//! measurements per day. Days are *virtual* (the prober's clock).

use parking_lot::Mutex;
use revtr_netsim::Addr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-user rate limits, as in the paper's user database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimits {
    /// Maximum concurrent reverse traceroutes.
    pub max_parallel: u32,
    /// Maximum reverse traceroutes per (virtual) day.
    pub max_per_day: u64,
}

impl Default for RateLimits {
    fn default() -> Self {
        RateLimits {
            max_parallel: 8,
            max_per_day: 100_000,
        }
    }
}

/// An API key issued to a user.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApiKey(pub u64);

#[derive(Debug)]
struct UserState {
    name: String,
    limits: RateLimits,
    sources: Vec<Addr>,
    in_flight: u32,
    day_index: u64,
    used_today: u64,
}

/// Errors from the user/limits layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UserError {
    /// Unknown API key.
    UnknownUser,
    /// Too many concurrent measurements.
    TooManyParallel,
    /// Daily budget exhausted.
    DailyQuotaExceeded,
    /// The requested source is not registered to this user (or at all).
    UnknownSource,
}

impl std::fmt::Display for UserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UserError::UnknownUser => write!(f, "unknown API key"),
            UserError::TooManyParallel => write!(f, "parallel measurement limit reached"),
            UserError::DailyQuotaExceeded => write!(f, "daily measurement quota exceeded"),
            UserError::UnknownSource => write!(f, "source not registered"),
        }
    }
}

impl std::error::Error for UserError {}

/// The user database.
#[derive(Debug, Default)]
pub struct UserDb {
    users: Mutex<HashMap<ApiKey, UserState>>,
    next_key: Mutex<u64>,
}

/// RAII permit for one in-flight measurement; releasing it frees the
/// parallel slot.
#[derive(Debug)]
pub struct Permit<'a> {
    db: &'a UserDb,
    key: ApiKey,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if let Some(u) = self.db.users.lock().get_mut(&self.key) {
            u.in_flight = u.in_flight.saturating_sub(1);
        }
    }
}

impl UserDb {
    /// Empty registry.
    pub fn new() -> UserDb {
        UserDb::default()
    }

    /// Register a user; returns their API key.
    pub fn add_user(&self, name: &str, limits: RateLimits) -> ApiKey {
        let mut next = self.next_key.lock();
        *next += 1;
        let key = ApiKey(0xA91_0000 + *next);
        self.users.lock().insert(
            key,
            UserState {
                name: name.to_string(),
                limits,
                sources: Vec::new(),
                in_flight: 0,
                day_index: 0,
                used_today: 0,
            },
        );
        key
    }

    /// The user's display name.
    pub fn user_name(&self, key: ApiKey) -> Option<String> {
        self.users.lock().get(&key).map(|u| u.name.clone())
    }

    /// Attach a source address to a user.
    pub fn add_source(&self, key: ApiKey, src: Addr) -> Result<(), UserError> {
        let mut g = self.users.lock();
        let u = g.get_mut(&key).ok_or(UserError::UnknownUser)?;
        if !u.sources.contains(&src) {
            u.sources.push(src);
        }
        Ok(())
    }

    /// Sources registered to a user.
    pub fn sources(&self, key: ApiKey) -> Result<Vec<Addr>, UserError> {
        self.users
            .lock()
            .get(&key)
            .map(|u| u.sources.clone())
            .ok_or(UserError::UnknownUser)
    }

    /// Admission control for one measurement toward `src` at virtual time
    /// `now_hours`. On success, returns a [`Permit`] holding the parallel
    /// slot and charges the daily quota.
    pub fn admit(&self, key: ApiKey, src: Addr, now_hours: f64) -> Result<Permit<'_>, UserError> {
        let mut g = self.users.lock();
        let u = g.get_mut(&key).ok_or(UserError::UnknownUser)?;
        if !u.sources.contains(&src) {
            return Err(UserError::UnknownSource);
        }
        let day = (now_hours / 24.0).floor() as u64;
        if day != u.day_index {
            u.day_index = day;
            u.used_today = 0;
        }
        if u.used_today >= u.limits.max_per_day {
            return Err(UserError::DailyQuotaExceeded);
        }
        if u.in_flight >= u.limits.max_parallel {
            return Err(UserError::TooManyParallel);
        }
        u.in_flight += 1;
        u.used_today += 1;
        Ok(Permit { db: self, key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_limits() {
        let db = UserDb::new();
        let key = db.add_user(
            "alice",
            RateLimits {
                max_parallel: 2,
                max_per_day: 3,
            },
        );
        assert_eq!(db.user_name(key).as_deref(), Some("alice"));
        let src = Addr::new(11, 0, 128, 4);
        assert_eq!(
            db.admit(key, src, 0.0).unwrap_err(),
            UserError::UnknownSource
        );
        db.add_source(key, src).expect("user exists");

        let p1 = db.admit(key, src, 0.0).expect("first admit");
        let p2 = db.admit(key, src, 0.0).expect("second admit");
        assert_eq!(
            db.admit(key, src, 0.0).unwrap_err(),
            UserError::TooManyParallel
        );
        drop(p1);
        let p3 = db.admit(key, src, 0.0).expect("slot freed");
        // Daily quota: 3 used.
        assert_eq!(
            db.admit(key, src, 0.1).unwrap_err(),
            UserError::DailyQuotaExceeded
        );
        drop(p2);
        drop(p3);
        // Next virtual day resets the quota.
        assert!(db.admit(key, src, 25.0).is_ok());
    }

    #[test]
    fn unknown_key_rejected() {
        let db = UserDb::new();
        assert_eq!(
            db.admit(ApiKey(42), Addr(1), 0.0).unwrap_err(),
            UserError::UnknownUser
        );
    }
}
