//! Multi-tenant admission control and the SLO-driven degradation ladder.
//!
//! The open-loop traffic model (`revtr-loadgen`) offers load the service
//! did not ask for; this module decides, deterministically, what gets
//! measured and at what fidelity. Three mechanisms compose:
//!
//! * **Per-class token buckets** — each priority class refills admission
//!   tokens in *arrival* virtual time at its configured rate; an arrival
//!   finding no token is shed (`RateLimited`).
//! * **Bounded per-class admission queues** — each admission wave accepts
//!   at most `queue_bound` requests per class; overflow is shed
//!   (`QueueFull`). Together with the bucket this makes every drop
//!   decision a pure function of the arrival stream and the plan — never
//!   of engine timing, worker count, or cache state, which is what keeps
//!   shed counters bit-identical across dispatch workers {1, 4, 16}.
//! * **The degradation ladder** — a per-class burn-rate controller runs
//!   at the wave barrier: when a class's shed fraction over the last
//!   `window_waves` waves burns past `shed_budget`, the class steps down
//!   one level instead of the service exiting 1. Levels trade fidelity
//!   for capacity: L1 caps spoofed batches at one probe, L2 answers from
//!   cache/stop-set/atlas evidence only, L3 additionally tolerates a
//!   stale atlas (the refresh SLA is suppressed). Each level also boosts
//!   the class's token rate — degraded requests are cheaper, so more of
//!   them fit the budget — which is the loop closure: shed burn falls,
//!   and after `recover_waves` consecutive clean waves the class climbs
//!   back up one level (hysteresis, so a flapping crowd cannot make the
//!   ladder oscillate every wave).
//!
//! The controller deliberately keys on *arrival-side* signals only (shed
//! fractions). Engine-side probe counts are schedule-dependent under
//! parallel dispatch (which worker wins a single-flight cache fill), so
//! a controller consuming them would shed differently at different
//! worker counts and break the determinism contract.

use crate::service::{RevtrService, ServiceError};
use crate::users::{ApiKey, UserError};
use revtr::{LoopConfig, RevtrResult, Status, TimedJob};
use revtr_netsim::Addr;
use std::collections::BTreeMap;

/// One timed request of the open-loop stream, already mapped onto the
/// topology (the caller resolves loadgen's destination ranks and user
/// ids to concrete addresses).
#[derive(Clone, Copy, Debug)]
pub struct TimedRequest {
    /// Virtual arrival time in milliseconds since stream start.
    pub vtime_ms: f64,
    /// Tenant index (into the caller's API-key table).
    pub tenant: u32,
    /// Priority-class index (0 = top).
    pub class: usize,
    /// Reverse traceroute destination.
    pub dst: Addr,
    /// Registered source.
    pub src: Addr,
}

/// Why an arrival was shed instead of measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The class's token bucket was empty at arrival.
    RateLimited,
    /// The class's bounded admission queue was full this wave.
    QueueFull,
    /// The tenant's own limits rejected it (daily quota or parallel cap).
    QuotaExceeded,
}

impl ShedReason {
    /// Metric-key suffix.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate",
            ShedReason::QueueFull => "queue",
            ShedReason::QuotaExceeded => "quota",
        }
    }
}

/// Admission policy for one priority class.
#[derive(Clone, Copy, Debug)]
pub struct ClassPolicy {
    /// Class name for reports and metric keys ("gold", "silver", …).
    pub name: &'static str,
    /// Token-bucket refill rate at level 0, requests per virtual hour.
    pub admit_per_hour: f64,
    /// Token-bucket capacity (burst tolerance).
    pub burst: f64,
    /// Bounded admission-queue depth per wave.
    pub queue_bound: usize,
    /// Fractional token-rate boost per degradation level: the effective
    /// rate is `admit_per_hour * (1 + boost_per_level * level)` —
    /// degraded requests are cheaper, so the bucket admits more of them.
    pub boost_per_level: f64,
}

/// The burn-rate controller's tuning.
#[derive(Clone, Copy, Debug)]
pub struct LadderConfig {
    /// Tolerated shed fraction of offered load per window before a class
    /// steps down a level.
    pub shed_budget: f64,
    /// Waves per burn window.
    pub window_waves: usize,
    /// Consecutive clean (zero-shed) waves required per recovery step.
    pub recover_waves: usize,
    /// Deepest level (inclusive). Level semantics: 0 full service, 1
    /// capped spoofed batches, 2 cache/stop-set/atlas-only, 3 + stale
    /// atlas tolerated.
    pub max_level: u8,
}

/// A full admission plan: per-class policies (indexed by class), the
/// ladder, the wave width, and the atlas-freshness SLA.
#[derive(Clone, Debug)]
pub struct AdmissionPlan {
    /// Per-class policies, index = priority-class index (0 = top).
    pub classes: Vec<ClassPolicy>,
    /// Degradation-ladder tuning (shared across classes; state is
    /// per-class).
    pub ladder: LadderConfig,
    /// Arrivals per admission wave (the engine-barrier granularity).
    pub wave: usize,
    /// Refresh a source's atlas when older than this (virtual hours, in
    /// arrival time); suppressed for sources whose every user this wave
    /// sits at `max_level` — the "staler atlas" degradation rung.
    /// `None` disables SLA-driven refreshes.
    pub refresh_sla_hours: Option<f64>,
}

impl AdmissionPlan {
    /// The production-shaped default: gold with 2× headroom, silver with
    /// 1.5×, bronze with ~1.3× and a strong per-level boost (the class
    /// the ladder actually manages). Rates are per virtual hour and
    /// deliberately modest — the point of the model is that offered load
    /// can exceed them.
    pub fn standard() -> AdmissionPlan {
        AdmissionPlan {
            classes: vec![
                ClassPolicy {
                    name: "gold",
                    admit_per_hour: 24.0,
                    burst: 6.0,
                    queue_bound: 24,
                    boost_per_level: 1.0,
                },
                ClassPolicy {
                    name: "silver",
                    admit_per_hour: 30.0,
                    burst: 8.0,
                    queue_bound: 24,
                    boost_per_level: 1.0,
                },
                ClassPolicy {
                    name: "bronze",
                    admit_per_hour: 30.0,
                    burst: 10.0,
                    queue_bound: 24,
                    boost_per_level: 1.0,
                },
            ],
            ladder: LadderConfig {
                shed_budget: 0.05,
                window_waves: 3,
                recover_waves: 2,
                max_level: 3,
            },
            wave: 32,
            refresh_sla_hours: Some(24.0),
        }
    }
}

/// One ladder move, recorded at its wave barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelTransition {
    /// Wave index (0-based) whose barrier made the move.
    pub wave: usize,
    /// Class that moved.
    pub class: usize,
    /// Level before.
    pub from: u8,
    /// Level after.
    pub to: u8,
}

/// Per-class accounting of one open-loop run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassReport {
    /// Class name (from the plan).
    pub name: String,
    /// Arrivals offered.
    pub offered: u64,
    /// Arrivals admitted and measured.
    pub admitted: u64,
    /// Admitted measurements that completed (status `Complete`).
    pub complete: u64,
    /// Shed: token bucket empty.
    pub shed_rate: u64,
    /// Shed: admission queue full.
    pub shed_queue: u64,
    /// Shed: tenant quota/parallel limits.
    pub shed_quota: u64,
    /// Ladder step-downs.
    pub stepdowns: u64,
    /// Ladder recoveries.
    pub recoveries: u64,
    /// Deepest level reached.
    pub max_level: u8,
    /// Level at end of run (0 = fully recovered).
    pub final_level: u8,
    /// Admissions served at each level (index = level).
    pub served_by_level: [u64; 4],
    /// Peak admission-queue depth observed.
    pub queue_depth_peak: u64,
}

impl ClassReport {
    /// Total sheds across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate + self.shed_queue + self.shed_quota
    }

    /// Goodput as a fraction of offered load (admitted / offered; 1.0
    /// when nothing was offered).
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.admitted as f64 / self.offered as f64
        }
    }
}

/// What an open-loop run produced.
#[derive(Debug)]
pub struct OpenLoopOutcome {
    /// Per-arrival results, aligned with the input stream; `None` = shed.
    pub results: Vec<Option<RevtrResult>>,
    /// Per-arrival shed reasons, aligned with the input stream.
    pub sheds: Vec<Option<ShedReason>>,
    /// Per-class accounting, index = class index.
    pub classes: Vec<ClassReport>,
    /// Every ladder move, in wave order.
    pub transitions: Vec<LevelTransition>,
    /// Admission waves executed.
    pub waves: usize,
    /// Control-block steps the engine dispatched.
    pub events: u64,
    /// SLA-driven atlas refreshes performed at wave barriers.
    pub atlas_refreshes: u64,
    /// SLA-due refreshes suppressed because every user of the source
    /// this wave sat at the stale-atlas level.
    pub stale_atlas_skips: u64,
}

/// Mutable per-class controller state.
struct ClassState {
    tokens: f64,
    last_ms: f64,
    level: u8,
    clean_streak: usize,
    /// Ring of the last `window_waves` waves' (offered, shed) counts.
    window: Vec<(u64, u64)>,
    /// This wave's running counts.
    offered_wave: u64,
    shed_wave: u64,
    admitted_wave: usize,
}

impl<'s> RevtrService<'s> {
    /// Run an open-loop arrival stream through admission control and the
    /// timed event loop.
    ///
    /// `keys` maps tenant index → API key (tenant quotas ride on
    /// [`crate::users::UserDb`], charged at each arrival's own virtual
    /// time). `arrivals` must be sorted by `(vtime_ms, tenant)` — the
    /// order `revtr_loadgen::generate` emits. Admission, shedding, and
    /// every ladder move are pure functions of the stream and the plan,
    /// so the outcome's shed/degrade counters — and, by the engine's
    /// shadow-swap determinism, its measurement results — are invariant
    /// to `lc.workers`.
    ///
    /// Configuration errors (unknown tenant key, unregistered source)
    /// surface as `Err`; per-arrival resource exhaustion is shed, not an
    /// error.
    pub fn run_open_loop(
        &self,
        keys: &[ApiKey],
        arrivals: &[TimedRequest],
        plan: &AdmissionPlan,
        lc: LoopConfig,
    ) -> Result<OpenLoopOutcome, ServiceError> {
        let tele = self.system().prober().telemetry();
        let start_hours = self.now_hours();
        let n_classes = plan.classes.len();
        let mut state: Vec<ClassState> = plan
            .classes
            .iter()
            .map(|c| ClassState {
                tokens: c.burst,
                last_ms: 0.0,
                level: 0,
                clean_streak: 0,
                window: Vec::new(),
                offered_wave: 0,
                shed_wave: 0,
                admitted_wave: 0,
            })
            .collect();
        let mut classes: Vec<ClassReport> = plan
            .classes
            .iter()
            .map(|c| ClassReport {
                name: c.name.to_string(),
                ..ClassReport::default()
            })
            .collect();
        let mut results: Vec<Option<RevtrResult>> = arrivals.iter().map(|_| None).collect();
        let mut sheds: Vec<Option<ShedReason>> = arrivals.iter().map(|_| None).collect();
        let mut transitions: Vec<LevelTransition> = Vec::new();
        let mut last_refresh: BTreeMap<Addr, f64> = BTreeMap::new();
        let mut atlas_refreshes = 0u64;
        let mut stale_atlas_skips = 0u64;
        let mut events = 0u64;
        let mut waves = 0usize;

        let wave_len = plan.wave.max(1);
        let mut base = 0usize;
        while base < arrivals.len() {
            let end = arrivals.len().min(base + wave_len);
            let chunk = &arrivals[base..end];
            for s in state.iter_mut() {
                s.offered_wave = 0;
                s.shed_wave = 0;
                s.admitted_wave = 0;
            }
            // Admission pass: token bucket → bounded queue → tenant
            // quota, all in arrival order and arrival time.
            let mut jobs: Vec<TimedJob> = Vec::new();
            let mut job_slots: Vec<usize> = Vec::new();
            // Sources used by admitted jobs this wave, with the minimum
            // degradation level among their users (for the refresh SLA).
            let mut wave_srcs: BTreeMap<Addr, u8> = BTreeMap::new();
            for (off, a) in chunk.iter().enumerate() {
                let i = base + off;
                if a.class >= n_classes {
                    return Err(ServiceError::User(UserError::UnknownUser));
                }
                let cp = &plan.classes[a.class];
                let st = &mut state[a.class];
                let rep = &mut classes[a.class];
                st.offered_wave += 1;
                rep.offered += 1;
                tele.counter_add(&format!("loadgen.offered.{}", cp.name), 1);
                let rate_ms =
                    cp.admit_per_hour * (1.0 + cp.boost_per_level * st.level as f64) / 3_600_000.0;
                st.tokens = (st.tokens + (a.vtime_ms - st.last_ms) * rate_ms).min(cp.burst);
                st.last_ms = a.vtime_ms;
                let shed = if st.tokens < 1.0 {
                    Some(ShedReason::RateLimited)
                } else if st.admitted_wave >= cp.queue_bound {
                    Some(ShedReason::QueueFull)
                } else {
                    let key = *keys
                        .get(a.tenant as usize)
                        .ok_or(ServiceError::User(UserError::UnknownUser))?;
                    let now = start_hours + a.vtime_ms / 3_600_000.0;
                    match self.users().admit(key, a.src, now) {
                        Ok(permit) => {
                            // The open loop holds no parallel slot across
                            // the wave — the event loop bounds real
                            // concurrency — so release it immediately;
                            // the daily-quota charge stays.
                            drop(permit);
                            None
                        }
                        Err(UserError::DailyQuotaExceeded) | Err(UserError::TooManyParallel) => {
                            Some(ShedReason::QuotaExceeded)
                        }
                        Err(e) => return Err(ServiceError::User(e)),
                    }
                };
                match shed {
                    Some(reason) => {
                        st.shed_wave += 1;
                        sheds[i] = Some(reason);
                        match reason {
                            ShedReason::RateLimited => rep.shed_rate += 1,
                            ShedReason::QueueFull => rep.shed_queue += 1,
                            ShedReason::QuotaExceeded => rep.shed_quota += 1,
                        }
                        tele.counter_add(
                            &format!("loadgen.shed.{}.{}", cp.name, reason.label()),
                            1,
                        );
                        tele.counter_add("loadgen.shed.total", 1);
                    }
                    None => {
                        st.tokens -= 1.0;
                        st.admitted_wave += 1;
                        rep.admitted += 1;
                        rep.served_by_level[(st.level as usize).min(3)] += 1;
                        rep.queue_depth_peak = rep.queue_depth_peak.max(st.admitted_wave as u64);
                        if tele.is_enabled() {
                            tele.counter_add(&format!("loadgen.admitted.{}", cp.name), 1);
                            tele.record(
                                &format!("loadgen.queue_depth.{}", cp.name),
                                st.admitted_wave as u64,
                            );
                        }
                        jobs.push(TimedJob {
                            dst: a.dst,
                            src: a.src,
                            arrival_ms: a.vtime_ms,
                            id: i,
                            degrade: st.level,
                        });
                        job_slots.push(i);
                        let lvl = wave_srcs.entry(a.src).or_insert(st.level);
                        *lvl = (*lvl).min(st.level);
                    }
                }
            }

            // Execute the admitted wave on the timed event loop.
            if !jobs.is_empty() {
                let outcome = self
                    .system()
                    .run_wave_timed(&jobs, lc)
                    .map_err(|_| ServiceError::WorkerPanicked)?;
                events += outcome.events;
                for (r, &slot) in outcome.results.into_iter().zip(&job_slots) {
                    let rep = &mut classes[arrivals[slot].class];
                    if r.status == Status::Complete {
                        rep.complete += 1;
                    }
                    self.store().push(&r);
                    results[slot] = Some(r);
                }
            }

            // Wave barrier: burn-rate controller and the atlas-refresh
            // SLA, both in arrival time (deterministic by construction).
            for (ci, st) in state.iter_mut().enumerate() {
                let cp = &plan.classes[ci];
                let rep = &mut classes[ci];
                st.window.push((st.offered_wave, st.shed_wave));
                let excess = st.window.len().saturating_sub(plan.ladder.window_waves);
                if excess > 0 {
                    st.window.drain(..excess);
                }
                let (offered, shed) = st
                    .window
                    .iter()
                    .fold((0u64, 0u64), |(o, s), &(wo, ws)| (o + wo, s + ws));
                let burn = if offered == 0 {
                    0.0
                } else {
                    shed as f64 / offered as f64
                };
                if burn > plan.ladder.shed_budget && st.level < plan.ladder.max_level {
                    let from = st.level;
                    st.level += 1;
                    st.clean_streak = 0;
                    rep.stepdowns += 1;
                    rep.max_level = rep.max_level.max(st.level);
                    transitions.push(LevelTransition {
                        wave: waves,
                        class: ci,
                        from,
                        to: st.level,
                    });
                    tele.counter_add(&format!("degrade.stepdown.{}", cp.name), 1);
                    tele.counter_add("degrade.transitions.total", 1);
                } else if st.shed_wave == 0 {
                    st.clean_streak += 1;
                    if st.level > 0 && st.clean_streak >= plan.ladder.recover_waves {
                        let from = st.level;
                        st.level -= 1;
                        st.clean_streak = 0;
                        rep.recoveries += 1;
                        transitions.push(LevelTransition {
                            wave: waves,
                            class: ci,
                            from,
                            to: st.level,
                        });
                        tele.counter_add(&format!("degrade.recover.{}", cp.name), 1);
                        tele.counter_add("degrade.transitions.total", 1);
                    }
                } else {
                    st.clean_streak = 0;
                }
            }
            if let Some(sla) = plan.refresh_sla_hours {
                let wave_end_hours =
                    start_hours + chunk.last().map(|a| a.vtime_ms).unwrap_or(0.0) / 3_600_000.0;
                for (&src, &min_level) in &wave_srcs {
                    let due =
                        wave_end_hours - last_refresh.get(&src).copied().unwrap_or(0.0) >= sla;
                    if !due {
                        continue;
                    }
                    if min_level >= plan.ladder.max_level {
                        // Every user of this source sits at the deepest
                        // level: tolerate the stale atlas (the ladder's
                        // last fidelity trade) instead of spending the
                        // refresh probes.
                        stale_atlas_skips += 1;
                        tele.counter_add("degrade.atlas_stale", 1);
                        continue;
                    }
                    self.system().refresh_atlas(src);
                    last_refresh.insert(src, wave_end_hours);
                    atlas_refreshes += 1;
                    tele.counter_add("loadgen.atlas_refresh", 1);
                }
            }
            waves += 1;
            base = end;
        }

        for (ci, st) in state.iter().enumerate() {
            classes[ci].final_level = st.level;
        }
        Ok(OpenLoopOutcome {
            results,
            sheds,
            classes,
            transitions,
            waves,
            events,
            atlas_refreshes,
            stale_atlas_skips,
        })
    }
}
