//! Service-level integration tests: users, sources, rate limits, batch
//! campaigns, and the NDT hook, over a tiny simulated Internet.

use revtr::EngineConfig;
use revtr_atlas::select_atlas_probes;
use revtr_netsim::{Addr, ScenarioConfig, ScenarioProfile, Sim, SimConfig};
use revtr_probing::Prober;
use revtr_service::{RateLimits, RevtrService, ServiceError, UserError};
use revtr_vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn build_service(sim: &Sim) -> RevtrService<'_> {
    build_service_with(sim, false)
}

fn build_service_with(sim: &Sim, harden: bool) -> RevtrService<'_> {
    let prober = Prober::new(sim);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 80, 3);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 30;
    cfg.harden = harden;
    let system = revtr::RevtrSystem::new(prober, cfg, vps, ingress, pool);
    RevtrService::new(system)
}

fn responsive_dest(sim: &Sim, skip: usize) -> Addr {
    sim.topo()
        .prefixes
        .iter()
        .skip(skip)
        .find_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .expect("responsive host exists")
}

#[test]
fn end_to_end_user_flow() {
    let sim = Sim::build(SimConfig::tiny(), 51);
    let service = build_service(&sim);
    let key = service.add_user("operator", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("VP source bootstraps");

    let dst = responsive_dest(&sim, 5);
    let r = service.request(key, dst, src).expect("request served");
    assert_eq!(r.dst, dst);
    assert_eq!(service.store().len(), 1);
    assert_eq!(service.store().lookup(dst, src).len(), 1);
}

#[test]
fn requests_to_unregistered_sources_rejected() {
    let sim = Sim::build(SimConfig::tiny(), 52);
    let service = build_service(&sim);
    let key = service.add_user("stranger", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    let dst = responsive_dest(&sim, 3);
    assert_eq!(
        service.request(key, dst, src).unwrap_err(),
        ServiceError::User(UserError::UnknownSource)
    );
}

#[test]
fn daily_quota_enforced() {
    let sim = Sim::build(SimConfig::tiny(), 53);
    let service = build_service(&sim);
    let key = service.add_user(
        "limited",
        RateLimits {
            max_parallel: 4,
            max_per_day: 2,
        },
    );
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");
    let dst = responsive_dest(&sim, 5);
    service.request(key, dst, src).expect("first");
    service.request(key, dst, src).expect("second");
    assert_eq!(
        service.request(key, dst, src).unwrap_err(),
        ServiceError::User(UserError::DailyQuotaExceeded)
    );
}

#[test]
fn daily_quota_resets_across_unflushed_day_boundary() {
    // Regression: the quota day used to be computed from the simulator's
    // *flushed* clock alone, which lags true virtual time by up to one
    // churn-flush threshold per slot — so a request arriving just after
    // a virtual midnight could still be charged to (and rejected on) the
    // previous day's exhausted quota. The service now keys the day on
    // `now_hours()` = flushed time + the clock's pending (unflushed)
    // milliseconds, so the straddling request below must admit.
    let sim = Sim::build(SimConfig::tiny(), 57);
    let service = build_service(&sim);
    let key = service.add_user(
        "boundary",
        RateLimits {
            max_parallel: 4,
            max_per_day: 1,
        },
    );
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");
    let dst = responsive_dest(&sim, 5);

    // Exhaust day 0.
    service.request(key, dst, src).expect("inside quota");
    assert_eq!(
        service.request(key, dst, src).unwrap_err(),
        ServiceError::User(UserError::DailyQuotaExceeded)
    );

    // Walk the clock to 30 virtual seconds short of midnight with one
    // large (auto-flushing) advance, then cross the boundary with a
    // small advance that stays below the flush threshold: the flushed
    // clock still reads day 0 while the authoritative clock is in day 1.
    let clock = service.system().prober().clock();
    clock.flush(&sim);
    let short_of_midnight = 24.0 - sim.now_hours() - 30_000.0 / 3_600_000.0;
    clock.advance(short_of_midnight * 3_600_000.0, &sim);
    clock.advance(45_000.0, &sim);
    assert!(
        sim.now_hours() < 24.0,
        "flushed clock must still lag in day 0 (got {})",
        sim.now_hours()
    );
    assert!(
        service.now_hours() >= 24.0,
        "authoritative clock must have crossed midnight (got {})",
        service.now_hours()
    );

    // The straddling request is a day-1 request: quota must have reset.
    service
        .request(key, dst, src)
        .expect("day-boundary request admits against the fresh day's quota");
}

#[test]
fn batch_campaign_parallel_matches_serial() {
    let sim = Sim::build(SimConfig::tiny(), 54);
    let service = build_service(&sim);
    let key = service.add_user("mapper", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");

    let pairs: Vec<(Addr, Addr)> = (0..8)
        .map(|i| (responsive_dest(&sim, i * 3), src))
        .collect();
    let out = service.batch(key, &pairs, 4).expect("campaign runs");
    assert_eq!(out.len(), pairs.len());
    for (r, &(d, s)) in out.iter().zip(&pairs) {
        assert_eq!(r.dst, d);
        assert_eq!(r.src, s);
    }
    assert_eq!(service.store().len(), pairs.len());
    let stats = service.store().stats();
    assert!(stats.complete > 0, "campaign completed nothing");
}

#[test]
fn ndt_hook_measures_client_paths() {
    let sim = Sim::build(SimConfig::tiny(), 55);
    let service = build_service(&sim);
    let server = sim.topo().vp_sites[1].host;
    let client = responsive_dest(&sim, 7);
    let r = service.on_ndt_test(client, server).expect("accepted");
    assert_eq!(r.dst, client);
    assert_eq!(r.src, server);
    assert_eq!(service.store().len(), 1);
}

#[test]
fn store_export_roundtrips_through_json() {
    let sim = Sim::build(SimConfig::tiny(), 56);
    let service = build_service(&sim);
    let key = service.add_user("archiver", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");
    service
        .request(key, responsive_dest(&sim, 2), src)
        .expect("request");
    let json = service.store().export_json();
    let store = revtr_service::ResultStore::new();
    assert_eq!(store.import_json(&json).expect("valid"), 1);
}

#[test]
fn request_options_forward_traceroute_and_staleness() {
    let sim = Sim::build(SimConfig::tiny(), 57);
    let service = build_service(&sim);
    let key = service.add_user("tuner", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");
    let dst = responsive_dest(&sim, 4);

    // Forward traceroute requested alongside.
    let served = service
        .request_with(
            key,
            dst,
            src,
            revtr_service::RequestOptions {
                max_atlas_age_hours: None,
                with_forward_traceroute: true,
            },
        )
        .expect("served");
    assert_eq!(served.reverse.dst, dst);
    let fwd = served.forward.expect("forward traceroute attached");
    assert!(fwd.reached);

    // Staleness bound: age the atlas by two virtual days, then require
    // freshness — the served result must not intersect an over-age trace.
    sim.advance_hours(48.0);
    let served = service
        .request_with(
            key,
            dst,
            src,
            revtr_service::RequestOptions {
                max_atlas_age_hours: Some(24.0),
                with_forward_traceroute: false,
            },
        )
        .expect("served");
    if let Some(age) = served.reverse.stats.intersected_trace_age_h {
        assert!(age <= 24.0, "stale trace served: {age}h old");
    }
}

#[test]
fn batch_campaigns_charge_the_daily_quota() {
    let sim = Sim::build(SimConfig::tiny(), 58);
    let service = build_service(&sim);
    let key = service.add_user(
        "bulk",
        RateLimits {
            max_parallel: 8,
            max_per_day: 3,
        },
    );
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");
    let pairs: Vec<(Addr, Addr)> = (0..3)
        .map(|i| (responsive_dest(&sim, i * 2), src))
        .collect();
    service.batch(key, &pairs, 2).expect("within quota");
    // The quota is now exhausted: another single request must be refused.
    let dst = responsive_dest(&sim, 9);
    assert_eq!(
        service.request(key, dst, src).unwrap_err(),
        ServiceError::User(UserError::DailyQuotaExceeded)
    );
}

/// Like [`build_service`] but with a watchdog-armed telemetry handle
/// threaded through the prober.
fn build_watched_service<'s>(
    sim: &'s Sim,
    deadline_ms: f64,
) -> (RevtrService<'s>, revtr_probing::Telemetry) {
    let telemetry = revtr_probing::Telemetry::with_config(revtr_probing::TelemetryConfig {
        watchdog_deadline_ms: Some(deadline_ms),
        ..revtr_probing::TelemetryConfig::default()
    });
    let prober = Prober::new(sim).with_telemetry(telemetry.clone());
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 80, 3);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 30;
    let system = revtr::RevtrSystem::new(prober, cfg, vps, ingress, pool);
    (RevtrService::new(system), telemetry)
}

#[test]
fn stuck_request_watchdog_flags_but_never_kills() {
    let sim = Sim::build(SimConfig::tiny(), 59);

    // A deadline of one virtual millisecond: every served request
    // overruns it, so the watchdog must flag all of them...
    let (watched, _tele) = build_watched_service(&sim, 1.0);
    let key = watched.add_user("operator", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    watched.add_source(key, src).expect("bootstrap");
    let dests: Vec<Addr> = (0..4).map(|i| responsive_dest(&sim, i * 2)).collect();
    let watched_results: Vec<_> = dests
        .iter()
        .map(|&d| watched.request(key, d, src).expect("served"))
        .collect();

    let flags = watched.watchdog_flags();
    assert_eq!(
        flags.len(),
        dests.iter().collect::<std::collections::HashSet<_>>().len(),
        "every distinct request overran a 1 ms deadline"
    );
    // ...with a deterministic sort and a non-empty stage attribution.
    let keys: Vec<(u32, u32)> = flags.iter().map(|f| (f.src, f.dst)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "flags must be (src, dst)-sorted");
    for f in &flags {
        assert!(f.virtual_us > f.deadline_us, "flag without an overrun");
        assert!(!f.stage.is_empty());
    }

    // ...and flagging is observe-only: an unwatched service serves the
    // exact same reverse paths. The service never kills a measurement.
    let plain = build_service(&sim);
    let key2 = plain.add_user("operator", RateLimits::default());
    plain.add_source(key2, src).expect("bootstrap");
    assert!(
        plain.watchdog_flags().is_empty(),
        "unarmed watchdog is empty"
    );
    for (&d, watched_r) in dests.iter().zip(&watched_results) {
        let plain_r = plain.request(key2, d, src).expect("served");
        assert_eq!(plain_r.status, watched_r.status);
        let hops = |r: &revtr::RevtrResult| -> Vec<Option<Addr>> {
            r.hops.iter().map(|h| h.addr).collect()
        };
        assert_eq!(hops(&plain_r), hops(watched_r), "watchdog changed a path");
    }
}

#[test]
fn hardened_service_reports_quarantined_vps_under_spoof_filter_rollout() {
    // A spoof-filter rollout makes some VPs' spoofed probes vanish
    // persistently; the hardened engine benches them and the service
    // surfaces the bench list to operators.
    let mut cfg = SimConfig::tiny();
    cfg.scenario = ScenarioConfig::profile(ScenarioProfile::SpoofFilterRollout);
    let sim = Sim::build(cfg, 1);
    let service = build_service_with(&sim, true);
    let key = service.add_user("operator", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");

    let pairs: Vec<(Addr, Addr)> = (0..48).map(|i| (responsive_dest(&sim, i), src)).collect();
    service.batch(key, &pairs, 4).expect("campaign runs");

    let benched = service.quarantined_vps();
    assert!(
        !benched.is_empty(),
        "rollout campaign must bench at least one VP"
    );
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let mut sorted = benched.clone();
    sorted.sort();
    assert_eq!(benched, sorted, "bench list must be sorted");
    for vp in &benched {
        assert!(vps.contains(vp), "benched {vp:?} is not a VP");
    }

    // A clean Internet benches nobody, hardened or not.
    let clean_sim = Sim::build(SimConfig::tiny(), 1);
    let clean = build_service_with(&clean_sim, true);
    let key2 = clean.add_user("operator", RateLimits::default());
    clean.add_source(key2, src).expect("bootstrap");
    clean.batch(key2, &pairs, 4).expect("campaign runs");
    assert!(clean.quarantined_vps().is_empty(), "clean run benches a VP");
}
