//! Ingress identification and vantage point ranking (§4.3).
//!
//! Background process, run per destination prefix:
//!
//! 1. find two ping-responsive destinations in the prefix,
//! 2. RR-ping both from every vantage point,
//! 3. per VP, take the addresses on *both* forward paths up to and
//!    including the first in-prefix address (with the double-stamp and
//!    loop heuristics of Appx. C as fallbacks) as **ingress candidates**,
//! 4. greedily set-cover the VPs with candidates → the prefix's ingresses,
//! 5. rank each ingress's VPs by RR slot distance (closest first).
//!
//! The output drives spoofed-probe VP selection: probe once per ingress,
//! from the closest VP to that ingress, in batches of three (§4.3).

use crate::parse::{path_view, Heuristics};
use revtr_netsim::hash::mix3;
use revtr_netsim::{Addr, PrefixId};
use revtr_probing::Prober;
use std::collections::HashMap;

/// Maximum host addresses ping-scanned per prefix when hunting for
/// responsive destinations.
pub const DEST_SCAN_LIMIT: usize = 12;

/// VPs kept per ingress queue (paper: give up on an ingress after five
/// VPs fail to traverse it).
pub const VPS_PER_INGRESS: usize = 5;

/// RR range: a VP is "in range" of a destination it reaches within this
/// many RR slots (one slot must remain for a reverse hop).
pub const RR_RANGE: usize = 8;

/// What one vantage point learned about one prefix (merged over the two
/// probed destinations).
#[derive(Clone, Debug, Default)]
pub struct VpView {
    /// Mean RR slot distance to the destinations, when reached.
    pub dest_dist: Option<f64>,
    /// Ingress candidates present on both forward paths, with the slot
    /// distance at which each was seen.
    pub candidates: Vec<(Addr, usize)>,
}

impl VpView {
    /// In RR range of the prefix?
    pub fn in_range(&self) -> bool {
        matches!(self.dest_dist, Some(d) if d <= RR_RANGE as f64)
    }
}

/// A selected ingress and its VP queue.
#[derive(Clone, Debug)]
pub struct IngressInfo {
    /// The ingress address.
    pub addr: Addr,
    /// Number of VPs whose paths traverse this ingress.
    pub cover: usize,
    /// Covering VPs, closest (fewest RR slots) first, capped at
    /// [`VPS_PER_INGRESS`].
    pub ranked_vps: Vec<Addr>,
}

/// Everything learned about one prefix.
#[derive(Clone, Debug, Default)]
pub struct PrefixInfo {
    /// The responsive destinations probed (≤ 2).
    pub dests: Vec<Addr>,
    /// Per-VP views.
    pub views: HashMap<Addr, VpView>,
    /// Selected ingresses, ordered by VP coverage (descending).
    pub ingresses: Vec<IngressInfo>,
    /// For prefixes without identified ingresses: in-range VPs ranked by
    /// mean distance to the destinations (§4.3 fallback).
    pub fallback: Vec<Addr>,
}

/// One queue of VPs to try, with the ingress the choice is based on.
#[derive(Clone, Debug)]
pub struct IngressQueue {
    /// The ingress address this queue targets (`None` for the fallback
    /// ranking of ingress-less prefixes).
    pub expected_ingress: Option<Addr>,
    /// VPs in preference order.
    pub vps: Vec<Addr>,
}

impl PrefixInfo {
    /// The revtr 2.0 spoofer plan: one queue per ingress (coverage order),
    /// or the fallback ranking when no ingress was identified.
    pub fn ingress_plan(&self) -> Vec<IngressQueue> {
        if self.ingresses.is_empty() {
            if self.fallback.is_empty() {
                return Vec::new();
            }
            return vec![IngressQueue {
                expected_ingress: None,
                vps: self.fallback.clone(),
            }];
        }
        self.ingresses
            .iter()
            .map(|i| IngressQueue {
                expected_ingress: Some(i.addr),
                vps: i.ranked_vps.clone(),
            })
            .collect()
    }
}

/// The ingress database: per-prefix VP selection state, plus the global VP
/// ranking used by the revtr 1.0 and "Global" baselines (§5.3).
#[derive(Clone, Debug, Default)]
pub struct IngressDb {
    per_prefix: HashMap<PrefixId, PrefixInfo>,
    /// All VPs, sorted by the number of prefixes they are in range of
    /// (descending) — the "Global" greedy baseline.
    global_order: Vec<Addr>,
}

impl IngressDb {
    /// Build by probing `prefixes` from `vps` with heuristics `h`.
    ///
    /// This is the weekly background measurement of §4.3; probes are
    /// charged to the prober's counters (pings + RR). Survey probes
    /// bypass the measurement cache entirely: they are VP→scan-destination
    /// RR pings no reverse-traceroute measurement ever re-issues (the
    /// engine probes source→hop), so caching them only bloats the store —
    /// they were ~94% of all inserts at an ~0.8% overall hit rate before
    /// this was turned off. Within one build the survey never self-hits
    /// (each (vp, dest) pair is probed once), so skipping the cache does
    /// not change the probes sent or the replies seen.
    pub fn build(
        prober: &Prober<'_>,
        vps: &[Addr],
        prefixes: &[PrefixId],
        h: Heuristics,
    ) -> IngressDb {
        let survey = prober.with_cache_enabled(false);
        let mut db = IngressDb::default();
        for &p in prefixes {
            let info = probe_prefix(&survey, vps, p, h);
            db.per_prefix.insert(p, info);
        }
        db.compute_global_order(vps);
        db
    }

    fn compute_global_order(&mut self, vps: &[Addr]) {
        let mut in_range: HashMap<Addr, usize> = vps.iter().map(|&v| (v, 0)).collect();
        for info in self.per_prefix.values() {
            for (&vp, view) in &info.views {
                if view.in_range() {
                    *in_range.entry(vp).or_insert(0) += 1;
                }
            }
        }
        let mut order: Vec<Addr> = vps.to_vec();
        order.sort_by_key(|v| {
            (
                std::cmp::Reverse(in_range.get(v).copied().unwrap_or(0)),
                v.0,
            )
        });
        self.global_order = order;
    }

    /// Info for one prefix, if probed.
    pub fn prefix(&self, p: PrefixId) -> Option<&PrefixInfo> {
        self.per_prefix.get(&p)
    }

    /// The revtr 2.0 plan for a prefix (empty if never probed or nothing
    /// in range).
    pub fn ingress_plan(&self, p: PrefixId) -> Vec<IngressQueue> {
        self.per_prefix
            .get(&p)
            .map(|i| i.ingress_plan())
            .unwrap_or_default()
    }

    /// The revtr 1.0 plan: in-range VPs by destination set-cover order
    /// (coverage first, *not* distance), then every remaining VP in global
    /// order — revtr 1.0 "would try them all" (§4.1 Q3).
    pub fn revtr1_plan(&self, p: PrefixId) -> Vec<Addr> {
        let Some(info) = self.per_prefix.get(&p) else {
            return self.global_order.clone();
        };
        let mut in_range: Vec<(Addr, f64)> = info
            .views
            .iter()
            .filter(|(_, v)| v.in_range())
            .map(|(&vp, v)| (vp, v.dest_dist.unwrap_or(f64::MAX)))
            .collect();
        // Set-cover flavour: order by how many of the probed destinations
        // the VP reached — without distance awareness, ties broken by the
        // global ranking.
        let global_pos: HashMap<Addr, usize> = self
            .global_order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        in_range.sort_by_key(|&(vp, _)| global_pos.get(&vp).copied().unwrap_or(usize::MAX));
        let mut plan: Vec<Addr> = in_range.iter().map(|&(vp, _)| vp).collect();
        for &vp in &self.global_order {
            if !plan.contains(&vp) {
                plan.push(vp);
            }
        }
        plan
    }

    /// The "Global" baseline plan: the same greedy global order for every
    /// prefix.
    pub fn global_plan(&self) -> &[Addr] {
        &self.global_order
    }

    /// Iterate probed prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = (PrefixId, &PrefixInfo)> {
        self.per_prefix.iter().map(|(&p, i)| (p, i))
    }
}

/// Probe one prefix from all VPs and derive its [`PrefixInfo`].
pub fn probe_prefix(prober: &Prober<'_>, vps: &[Addr], p: PrefixId, h: Heuristics) -> PrefixInfo {
    let sim = prober.sim();
    let prefix = sim.topo().prefix(p).prefix;

    // 1. Find up to two responsive destinations. The scan itself uses the
    // first VP as the pinger (any source works: responsiveness is a
    // destination property).
    let pinger = match vps.first() {
        Some(&v) => v,
        None => return PrefixInfo::default(),
    };
    let mut dests: Vec<Addr> = Vec::new();
    for cand in sim.host_addrs(p).take(DEST_SCAN_LIMIT) {
        if prober.ping(pinger, cand).is_some() {
            dests.push(cand);
            if dests.len() == 2 {
                break;
            }
        }
    }
    if dests.is_empty() {
        return PrefixInfo {
            dests,
            ..Default::default()
        };
    }

    // 2–3. RR-ping the destinations from every VP and merge views.
    let mut views: HashMap<Addr, VpView> = HashMap::new();
    for &vp in vps {
        let mut per_dest: Vec<crate::parse::PathView> = Vec::new();
        for &d in &dests {
            if let Some(r) = prober.rr_ping(vp, d) {
                per_dest.push(path_view(&r.slots, prefix, h));
            }
        }
        if per_dest.is_empty() {
            continue;
        }
        let dists: Vec<usize> = per_dest.iter().filter_map(|v| v.dest_dist).collect();
        let dest_dist = if dists.is_empty() {
            None
        } else {
            Some(dists.iter().sum::<usize>() as f64 / dists.len() as f64)
        };
        // Candidates on *both* paths (or the single path if only one
        // destination answered RR).
        let first = &per_dest[0];
        let candidates: Vec<(Addr, usize)> = first
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, a)| per_dest[1..].iter().all(|v| v.candidates.contains(a)))
            .map(|(i, &a)| (a, i))
            .collect();
        views.insert(
            vp,
            VpView {
                dest_dist,
                candidates,
            },
        );
    }

    // 4. Greedy set cover of VPs by candidate ingress.
    let mut uncovered: Vec<Addr> = views
        .iter()
        .filter(|(_, v)| !v.candidates.is_empty())
        .map(|(&vp, _)| vp)
        .collect();
    uncovered.sort_unstable();
    let mut ingresses: Vec<IngressInfo> = Vec::new();
    while !uncovered.is_empty() {
        // Count coverage per candidate address.
        let mut cover: HashMap<Addr, Vec<Addr>> = HashMap::new();
        for &vp in &uncovered {
            for &(cand, _) in &views[&vp].candidates {
                cover.entry(cand).or_default().push(vp);
            }
        }
        let Some((&best, _)) = cover.iter().max_by_key(|(a, vps_c)| {
            (
                vps_c.len(),
                mix3(sim.seed() ^ 0x5e7c, a.0 as u64, p.0 as u64), // random tie
            )
        }) else {
            break;
        };
        let mut covered = cover.remove(&best).expect("winner exists");
        covered.sort_by_key(|vp| {
            views[vp]
                .candidates
                .iter()
                .find(|(a, _)| *a == best)
                .map(|&(_, d)| d)
                .unwrap_or(usize::MAX)
        });
        uncovered.retain(|vp| !covered.contains(vp));
        ingresses.push(IngressInfo {
            addr: best,
            cover: covered.len(),
            ranked_vps: covered.into_iter().take(VPS_PER_INGRESS).collect(),
        });
    }
    ingresses.sort_by_key(|i| std::cmp::Reverse(i.cover));

    // 5. Fallback ranking for ingress-less prefixes.
    let mut fallback: Vec<(Addr, f64)> = views
        .iter()
        .filter(|(_, v)| v.in_range())
        .map(|(&vp, v)| (vp, v.dest_dist.unwrap_or(f64::MAX)))
        .collect();
    fallback.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0 .0.cmp(&b.0 .0)));

    PrefixInfo {
        dests,
        views,
        ingresses,
        fallback: fallback.into_iter().map(|(vp, _)| vp).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::{Sim, SimConfig};

    fn setup() -> (Sim, Vec<Addr>) {
        let sim = Sim::build(SimConfig::tiny(), 17);
        let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
        (sim, vps)
    }

    #[test]
    fn build_produces_plans_for_most_prefixes() {
        let (sim, vps) = setup();
        let prober = Prober::new(&sim);
        let prefixes: Vec<PrefixId> = sim.topo().prefixes.iter().map(|p| p.id).take(25).collect();
        let db = IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL);
        let with_plan = prefixes
            .iter()
            .filter(|&&p| !db.ingress_plan(p).is_empty())
            .count();
        assert!(
            with_plan * 2 >= prefixes.len(),
            "only {with_plan}/{} prefixes have a plan",
            prefixes.len()
        );
        // Background probes were charged.
        let snap = prober.counters().snapshot();
        assert!(snap.ping > 0);
        assert!(snap.rr > 0);
        assert_eq!(snap.spoof_rr, 0, "background VP selection never spoofs");
    }

    #[test]
    fn ingress_queues_are_bounded_and_ordered() {
        let (sim, vps) = setup();
        let prober = Prober::new(&sim);
        let prefixes: Vec<PrefixId> = sim.topo().prefixes.iter().map(|p| p.id).take(25).collect();
        let db = IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL);
        for (_, info) in db.prefixes() {
            for w in info.ingresses.windows(2) {
                assert!(w[0].cover >= w[1].cover, "coverage order violated");
            }
            for i in &info.ingresses {
                assert!(i.ranked_vps.len() <= VPS_PER_INGRESS);
                assert!(!i.ranked_vps.is_empty());
            }
        }
    }

    #[test]
    fn plans_list_each_vp_once() {
        let (sim, vps) = setup();
        let prober = Prober::new(&sim);
        let prefixes: Vec<PrefixId> = sim.topo().prefixes.iter().map(|p| p.id).take(10).collect();
        let db = IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL);
        for &p in &prefixes {
            let plan = db.revtr1_plan(p);
            let mut sorted = plan.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), plan.len(), "revtr1 plan repeats a VP");
            assert_eq!(plan.len(), vps.len(), "revtr1 tries every VP");
        }
        assert_eq!(db.global_plan().len(), vps.len());
    }

    #[test]
    fn heuristics_expand_coverage_monotonically() {
        let (sim, vps) = setup();
        let prober = Prober::new(&sim);
        let prefixes: Vec<PrefixId> = sim.topo().prefixes.iter().map(|p| p.id).take(40).collect();
        let count_found = |h: Heuristics| {
            let db = IngressDb::build(&prober, &vps, &prefixes, h);
            prefixes
                .iter()
                .filter(|&&p| {
                    db.prefix(p)
                        .map(|i| !i.ingresses.is_empty())
                        .unwrap_or(false)
                })
                .count()
        };
        let base = count_found(Heuristics::INGRESS_ONLY);
        let dbl = count_found(Heuristics::WITH_DOUBLE);
        let full = count_found(Heuristics::FULL);
        assert!(dbl >= base, "double stamp lost prefixes: {dbl} < {base}");
        assert!(full >= dbl, "loop heuristic lost prefixes: {full} < {dbl}");
    }
}

/// §4.3's validation that two destinations suffice: probe a *third*
/// responsive destination and check whether its forward paths traverse the
/// already-identified candidate ingresses (the paper: true for 87.2% of
/// prefixes). Returns `None` when the prefix lacks a third destination or
/// prior candidates.
pub fn third_destination_consistent(
    prober: &Prober<'_>,
    vps: &[Addr],
    info: &PrefixInfo,
    p: PrefixId,
    h: Heuristics,
) -> Option<bool> {
    let sim = prober.sim();
    let prefix = sim.topo().prefix(p).prefix;
    let third = sim
        .host_addrs(p)
        .filter(|a| !info.dests.contains(a))
        .take(DEST_SCAN_LIMIT)
        .find(|&a| prober.ping(vps[0], a).is_some())?;
    let known: std::collections::HashSet<Addr> = info
        .views
        .values()
        .flat_map(|v| v.candidates.iter().map(|&(a, _)| a))
        .collect();
    if known.is_empty() {
        return None;
    }
    // The third destination is consistent if every VP whose path to it is
    // parseable traverses at least one known candidate.
    let mut checked = 0;
    let mut consistent = 0;
    for &vp in vps {
        let Some(r) = prober.rr_ping(vp, third) else {
            continue;
        };
        let view = path_view(&r.slots, prefix, h);
        if view.candidates.is_empty() {
            continue;
        }
        checked += 1;
        if view.candidates.iter().any(|c| known.contains(c)) {
            consistent += 1;
        }
    }
    (checked > 0).then_some(consistent == checked)
}

#[cfg(test)]
mod stability_tests {
    use super::*;
    use revtr_netsim::{Sim, SimConfig};

    #[test]
    fn most_prefixes_have_stable_candidates() {
        let sim = Sim::build(SimConfig::tiny(), 19);
        let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
        let prober = Prober::new(&sim);
        let prefixes: Vec<PrefixId> = sim.topo().prefixes.iter().map(|p| p.id).take(40).collect();
        let db = IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL);
        let (mut stable, mut total) = (0, 0);
        for (p, info) in db.prefixes() {
            if let Some(ok) = third_destination_consistent(&prober, &vps, info, p, Heuristics::FULL)
            {
                total += 1;
                if ok {
                    stable += 1;
                }
            }
        }
        assert!(total > 5, "too few prefixes evaluated: {total}");
        // The paper's 87.2%: a clear majority must be stable.
        assert!(
            stable * 4 >= total * 3,
            "only {stable}/{total} prefixes have stable ingress candidates"
        );
    }
}
