//! Parsing Record Route replies for ingress identification (§4.3, Appx. C).
//!
//! An RR reply to a destination inside prefix `P` is a flat list of up to
//! nine addresses: forward-path stamps, possibly the destination's own
//! stamp(s), then reverse-path stamps. Identifying where the forward path
//! ends is non-trivial because destinations may not stamp, or stamp
//! off-prefix aliases — hence the double-stamp and loop heuristics.

use revtr_netsim::{Addr, Prefix};

/// What we inferred about one RR reply toward a prefix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RrParse {
    /// Index of the first slot whose address lies inside the destination
    /// prefix, if any — the baseline "reached" signal.
    pub in_prefix_idx: Option<usize>,
    /// Index of the first entry of an adjacent duplicate pair
    /// (`slots[i] == slots[i+1]`) — Appx. C double stamp.
    pub double_stamp_idx: Option<usize>,
    /// `(i, j)` with `slots[i] == slots[j]`, `j > i + 1`, and a loop-free
    /// interior — Appx. C loop: the packet reached the destination
    /// somewhere inside `(i, j)`.
    pub loop_span: Option<(usize, usize)>,
}

/// Analyse an RR slot list against a destination prefix.
pub fn parse_rr(slots: &[Addr], prefix: Prefix) -> RrParse {
    let mut p = RrParse::default();
    for (i, &a) in slots.iter().enumerate() {
        if prefix.contains(a) {
            p.in_prefix_idx = Some(i);
            break;
        }
    }
    for i in 0..slots.len().saturating_sub(1) {
        if slots[i] == slots[i + 1] {
            p.double_stamp_idx = Some(i);
            break;
        }
    }
    // Loop: first repeated address with a non-empty, loop-free interior.
    'outer: for i in 0..slots.len() {
        for j in i + 2..slots.len() {
            if slots[i] == slots[j] {
                let interior = &slots[i + 1..j];
                let mut seen: Vec<Addr> = Vec::with_capacity(interior.len());
                let mut clean = true;
                for &x in interior {
                    if seen.contains(&x) {
                        clean = false;
                        break;
                    }
                    seen.push(x);
                }
                if clean {
                    p.loop_span = Some((i, j));
                    break 'outer;
                }
            }
        }
    }
    p
}

/// Heuristic toggles for ingress identification (the rows of Table 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heuristics {
    /// Use the double-stamp signal when no in-prefix address is present.
    pub double_stamp: bool,
    /// Use the loop signal when nothing else worked.
    pub loops: bool,
}

impl Heuristics {
    /// Baseline: in-prefix addresses only.
    pub const INGRESS_ONLY: Heuristics = Heuristics {
        double_stamp: false,
        loops: false,
    };
    /// + double stamp.
    pub const WITH_DOUBLE: Heuristics = Heuristics {
        double_stamp: true,
        loops: false,
    };
    /// Full revtr 2.0: + double stamp + loop.
    pub const FULL: Heuristics = Heuristics {
        double_stamp: true,
        loops: true,
    };
}

/// Outcome of analysing one RR reply with a heuristic set: where the
/// forward path ends and which addresses are ingress candidates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathView {
    /// RR slot distance at which the destination (prefix) was reached, if
    /// determinable. This is the "within 8 hops" distance.
    pub dest_dist: Option<usize>,
    /// Candidate ingress addresses (forward-path slots up to and including
    /// the first in-prefix address, or heuristic equivalents).
    pub candidates: Vec<Addr>,
}

/// Extract the per-destination view from an RR reply.
pub fn path_view(slots: &[Addr], prefix: Prefix, h: Heuristics) -> PathView {
    let p = parse_rr(slots, prefix);
    if let Some(cut) = p.in_prefix_idx {
        return PathView {
            dest_dist: Some(cut),
            candidates: dedup(slots[..=cut].to_vec()),
        };
    }
    if h.double_stamp {
        if let Some(cut) = p.double_stamp_idx {
            // The doubled address is the destination (or its last hop);
            // everything up to it is forward path.
            return PathView {
                dest_dist: Some(cut),
                candidates: dedup(slots[..=cut].to_vec()),
            };
        }
    }
    if h.loops {
        if let Some((i, j)) = p.loop_span {
            // Reached the destination somewhere inside (i, j): forward path
            // is the prefix up to `i` plus the (ambiguous) interior.
            let mut cands = slots[..j].to_vec();
            return PathView {
                dest_dist: Some(i),
                candidates: dedup(std::mem::take(&mut cands)),
            };
        }
    }
    PathView::default()
}

fn dedup(mut v: Vec<Addr>) -> Vec<Addr> {
    let mut seen = Vec::with_capacity(v.len());
    v.retain(|a| {
        if seen.contains(a) || a.is_private() {
            false
        } else {
            seen.push(*a);
            true
        }
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Addr {
        Addr(0x0B00_0000 + n)
    }

    fn prefix() -> Prefix {
        Prefix::new(Addr(0x0B10_8000), 24)
    }

    fn in_p(n: u32) -> Addr {
        Addr(0x0B10_8000 + n)
    }

    #[test]
    fn plain_in_prefix_cut() {
        let slots = [a(1), a(2), in_p(1), a(9), a(10)];
        let v = path_view(&slots, prefix(), Heuristics::INGRESS_ONLY);
        assert_eq!(v.dest_dist, Some(2));
        assert_eq!(v.candidates, vec![a(1), a(2), in_p(1)]);
    }

    #[test]
    fn double_stamp_detected_only_when_enabled() {
        let slots = [a(1), a(2), a(3), a(3), a(9)];
        let off = path_view(&slots, prefix(), Heuristics::INGRESS_ONLY);
        assert_eq!(off.dest_dist, None);
        assert!(off.candidates.is_empty());
        let on = path_view(&slots, prefix(), Heuristics::WITH_DOUBLE);
        assert_eq!(on.dest_dist, Some(2));
        assert_eq!(on.candidates, vec![a(1), a(2), a(3)]);
    }

    #[test]
    fn loop_detected_only_when_enabled() {
        // a(2) repeats with loop-free interior [a(3), a(4)].
        let slots = [a(1), a(2), a(3), a(4), a(2), a(9)];
        let v2 = path_view(&slots, prefix(), Heuristics::WITH_DOUBLE);
        assert_eq!(v2.dest_dist, None);
        let v3 = path_view(&slots, prefix(), Heuristics::FULL);
        assert_eq!(v3.dest_dist, Some(1));
        assert_eq!(v3.candidates, vec![a(1), a(2), a(3), a(4)]);
    }

    #[test]
    fn in_prefix_beats_heuristics() {
        let slots = [a(1), in_p(7), a(3), a(3)];
        let v = path_view(&slots, prefix(), Heuristics::FULL);
        assert_eq!(v.dest_dist, Some(1));
        assert_eq!(v.candidates, vec![a(1), in_p(7)]);
    }

    #[test]
    fn adjacent_duplicate_is_not_a_loop() {
        let slots = [a(1), a(3), a(3), a(9)];
        let p = parse_rr(&slots, prefix());
        assert_eq!(p.double_stamp_idx, Some(1));
        assert_eq!(p.loop_span, None);
    }

    #[test]
    fn private_addresses_excluded_from_candidates() {
        let slots = [a(1), Addr::new(10, 0, 0, 9), in_p(1)];
        let v = path_view(&slots, prefix(), Heuristics::FULL);
        assert_eq!(v.candidates, vec![a(1), in_p(1)]);
    }

    #[test]
    fn empty_slots() {
        let v = path_view(&[], prefix(), Heuristics::FULL);
        assert_eq!(v, PathView::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_addr() -> impl Strategy<Value = Addr> {
        (0x0B00_0000u32..0x0B40_0000).prop_map(Addr)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// parse_rr never panics and its indices are in bounds.
        #[test]
        fn parse_indices_in_bounds(slots in proptest::collection::vec(arb_addr(), 0..9)) {
            let prefix = Prefix::new(Addr(0x0B10_8000), 24);
            let p = parse_rr(&slots, prefix);
            if let Some(i) = p.in_prefix_idx {
                prop_assert!(i < slots.len());
                prop_assert!(prefix.contains(slots[i]));
            }
            if let Some(i) = p.double_stamp_idx {
                prop_assert!(i + 1 < slots.len());
                prop_assert_eq!(slots[i], slots[i + 1]);
            }
            if let Some((i, j)) = p.loop_span {
                prop_assert!(j < slots.len());
                prop_assert!(j > i + 1);
                prop_assert_eq!(slots[i], slots[j]);
            }
        }

        /// Stronger heuristics never lose a destination-distance signal.
        #[test]
        fn heuristics_are_monotone(slots in proptest::collection::vec(arb_addr(), 0..9)) {
            let prefix = Prefix::new(Addr(0x0B10_8000), 24);
            let base = path_view(&slots, prefix, Heuristics::INGRESS_ONLY);
            let dbl = path_view(&slots, prefix, Heuristics::WITH_DOUBLE);
            let full = path_view(&slots, prefix, Heuristics::FULL);
            if base.dest_dist.is_some() {
                prop_assert!(dbl.dest_dist.is_some());
            }
            if dbl.dest_dist.is_some() {
                prop_assert!(full.dest_dist.is_some());
            }
        }

        /// Candidates are deduped, never private, and drawn from the slots.
        #[test]
        fn candidates_are_clean(slots in proptest::collection::vec(arb_addr(), 0..9)) {
            let prefix = Prefix::new(Addr(0x0B10_8000), 24);
            let v = path_view(&slots, prefix, Heuristics::FULL);
            let mut seen = Vec::new();
            for c in &v.candidates {
                prop_assert!(!c.is_private());
                prop_assert!(slots.contains(c));
                prop_assert!(!seen.contains(c), "duplicate candidate");
                seen.push(*c);
            }
        }
    }
}
