//! # revtr-vpselect — record-route vantage point selection (§4.3)
//!
//! The closer a VP is to a destination, the more reverse hops one spoofed
//! RR probe reveals. revtr 2.0 identifies each destination prefix's
//! *ingresses* from weekly background RR measurements and probes once per
//! ingress, from the closest VP — replacing revtr 1.0's exhaustive
//! set-cover ordering and cutting offline budget from 20% to 3% of probes
//! (Insight 1.8).
//!
//! This crate provides:
//!
//! * RR reply parsing with the Appx. C double-stamp and loop heuristics
//!   ([`parse`]),
//! * the background [`IngressDb`] builder and the three VP orderings
//!   compared in §5.3: ingress (revtr 2.0), revtr 1.0 set-cover, and the
//!   greedy "Global" baseline.

#![warn(missing_docs)]

pub mod ingress;
pub mod parse;

pub use ingress::{
    third_destination_consistent, IngressDb, IngressInfo, IngressQueue, PrefixInfo, VpView,
    RR_RANGE, VPS_PER_INGRESS,
};
pub use parse::{parse_rr, path_view, Heuristics, PathView, RrParse};
