//! A CAIDA-style AS relationship dataset: correct but incomplete.
//!
//! The paper uses CAIDA's serial-2 relationships and customer cones for the
//! suspicious-link heuristic (§5.2.2) and the asymmetry study (§6.2).
//! CAIDA's inference misses some links, so this measured view keeps each
//! true relationship with a configurable probability (default 90%) — the
//! missing 10% is what makes the suspicious-link heuristic fire.

use revtr_netsim::hash::{chance, mix3};
use revtr_netsim::{AsId, Rel, Sim};
use std::collections::{HashMap, HashSet};

/// Default fraction of true relationships present in the dataset.
pub const DEFAULT_COVERAGE: f64 = 0.90;

/// Paper §5.2.2: an AS is "small" if it has ≤ 5 providers and ≤ 10 ASes in
/// its customer cone.
pub const SMALL_AS_MAX_PROVIDERS: usize = 5;
/// Customer-cone bound of a "small" AS.
pub const SMALL_AS_MAX_CONE: usize = 10;

/// Measured AS-relationship dataset.
#[derive(Clone, Debug)]
pub struct RelationshipDb {
    /// (a, b) → b's relationship to a, for known pairs (both orders stored).
    rels: HashMap<(AsId, AsId), Rel>,
    /// Customer cone sizes computed over *known* customer edges.
    cone: Vec<usize>,
    /// Known providers per AS.
    providers: Vec<Vec<AsId>>,
}

impl RelationshipDb {
    /// Build the dataset from the sim, keeping each relationship with
    /// probability `coverage` (seeded by the sim's seed).
    pub fn build(sim: &Sim, coverage: f64) -> RelationshipDb {
        let topo = sim.topo();
        let n = topo.ases.len();
        let mut rels = HashMap::new();
        let mut providers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        let mut customers: Vec<Vec<AsId>> = vec![Vec::new(); n];
        for a in &topo.ases {
            for (b, rel) in topo.as_neighbors(a.id) {
                if a.id.0 > b.0 {
                    continue; // handle each pair once
                }
                let keep = chance(
                    mix3(sim.seed() ^ 0xca1d_a5e7, a.id.0 as u64, b.0 as u64),
                    coverage,
                );
                if !keep {
                    continue;
                }
                rels.insert((a.id, b), rel);
                rels.insert((b, a.id), rel.flip());
                match rel {
                    Rel::Provider => {
                        providers[a.id.index()].push(b);
                        customers[b.index()].push(a.id);
                    }
                    Rel::Customer => {
                        providers[b.index()].push(a.id);
                        customers[a.id.index()].push(b);
                    }
                    Rel::Peer => {}
                }
            }
        }
        // Customer cones over the known customer edges.
        let mut cone = vec![0usize; n];
        for (a, slot) in cone.iter_mut().enumerate() {
            let mut seen: HashSet<AsId> = HashSet::new();
            let mut stack = vec![AsId(a as u32)];
            while let Some(x) = stack.pop() {
                if !seen.insert(x) {
                    continue;
                }
                for &c in &customers[x.index()] {
                    if !seen.contains(&c) {
                        stack.push(c);
                    }
                }
            }
            *slot = seen.len();
        }
        RelationshipDb {
            rels,
            cone,
            providers,
        }
    }

    /// Build with default coverage.
    pub fn new(sim: &Sim) -> RelationshipDb {
        Self::build(sim, DEFAULT_COVERAGE)
    }

    /// Known relationship: what `b` is to `a`, if the dataset has the pair.
    pub fn rel(&self, a: AsId, b: AsId) -> Option<Rel> {
        self.rels.get(&(a, b)).copied()
    }

    /// Known providers of `a`.
    pub fn providers(&self, a: AsId) -> &[AsId] {
        &self.providers[a.index()]
    }

    /// Customer cone size of `a` (known edges only; includes `a`).
    pub fn cone_size(&self, a: AsId) -> usize {
        self.cone[a.index()]
    }

    /// Paper §5.2.2 smallness test.
    pub fn is_small(&self, a: AsId) -> bool {
        self.providers(a).len() <= SMALL_AS_MAX_PROVIDERS && self.cone_size(a) <= SMALL_AS_MAX_CONE
    }

    /// Suspicious AS link heuristic (§5.2.2): the link `s → p` is
    /// suspicious if `s` is small, `p` is a provider of one of `s`'s
    /// providers, and no relationship between `s` and `p` is known —
    /// suggesting a router between them forwarded RR packets without
    /// stamping.
    pub fn is_suspicious_link(&self, s: AsId, p: AsId) -> bool {
        if self.rel(s, p).is_some() || !self.is_small(s) {
            return false;
        }
        self.providers(s)
            .iter()
            .any(|&mid| self.providers(mid).contains(&p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::{AsTier, SimConfig};

    fn sim() -> Sim {
        Sim::build(SimConfig::tiny(), 6)
    }

    #[test]
    fn coverage_controls_completeness() {
        let s = sim();
        let full = RelationshipDb::build(&s, 1.0);
        let partial = RelationshipDb::build(&s, 0.5);
        let mut full_known = 0;
        let mut partial_known = 0;
        for a in &s.topo().ases {
            for (b, rel) in s.topo().as_neighbors(a.id) {
                if full.rel(a.id, b) == Some(rel) {
                    full_known += 1;
                }
                if partial.rel(a.id, b).is_some() {
                    partial_known += 1;
                }
            }
        }
        let total: usize = s.topo().ases.iter().map(|a| a.neighbors.len()).sum();
        assert_eq!(full_known, total, "full coverage keeps everything");
        assert!(partial_known < total, "partial coverage must drop links");
        assert!(partial_known > total / 4, "but not too many");
    }

    #[test]
    fn known_rels_are_never_wrong() {
        let s = sim();
        let db = RelationshipDb::new(&s);
        for a in &s.topo().ases {
            for (b, rel) in s.topo().as_neighbors(a.id) {
                if let Some(r) = db.rel(a.id, b) {
                    assert_eq!(r, rel, "dataset is incomplete, not incorrect");
                }
            }
        }
    }

    #[test]
    fn cones_and_smallness() {
        let s = sim();
        let db = RelationshipDb::build(&s, 1.0);
        for a in &s.topo().ases {
            match a.tier {
                AsTier::Stub => {
                    assert_eq!(db.cone_size(a.id), 1);
                    assert!(db.is_small(a.id));
                }
                AsTier::Tier1 => {
                    assert!(db.cone_size(a.id) > SMALL_AS_MAX_CONE);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn suspicious_link_requires_missing_relationship() {
        let s = sim();
        let db = RelationshipDb::build(&s, 1.0);
        // With full coverage, a stub and its own provider are never
        // suspicious (the relationship is known).
        for a in s.topo().ases.iter().filter(|a| a.tier == AsTier::Stub) {
            for (b, rel) in s.topo().as_neighbors(a.id) {
                if rel == Rel::Provider {
                    assert!(!db.is_suspicious_link(a.id, b));
                }
            }
        }
    }
}
