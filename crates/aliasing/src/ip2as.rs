//! IP-to-AS mapping, in the style of Arnold et al. (CoNEXT 2020) as used by the
//! paper (Appx. B.2): a prioritized lookup over registry-derived origin
//! data.
//!
//! In the simulator, the registry view is the per-AS /16 allocation block —
//! which is exactly what RouteViews/whois would say. It is *correct for
//! hosts and loopbacks* but **ambiguous at borders**: interdomain /30s are
//! numbered from the provider's block, so the customer-side interface of a
//! border link maps to the provider. This is the real-world error mode that
//! makes the intradomain/interdomain decision of Q5 non-trivial.

use revtr_netsim::hash::{chance, mix3};
use revtr_netsim::topology::LinkKind;
use revtr_netsim::{Addr, AsId, Sim};
use std::collections::HashMap;

/// Fraction of interdomain interfaces whose true ownership is published in
/// the PeeringDB/EuroIX-like dataset (the paper's mapping prioritizes
/// these sources over registry origins, Appx. B.2).
pub const DEFAULT_IX_COVERAGE: f64 = 0.92;

/// IP-to-AS mapper in the style of Arnold et al. (Appx. B.2): a
/// prioritized lookup — IXP/facility data (EuroIX/PeeringDB) first, then
/// registry origin (RouteViews/whois).
#[derive(Clone, Debug)]
pub struct Ip2As {
    block_base: u32,
    n_ases: u32,
    /// PeeringDB/EuroIX-style published interface ownership for a subset
    /// of interdomain interfaces (the customer side of provider-numbered
    /// /30s — exactly where the registry is wrong).
    ix_data: HashMap<Addr, AsId>,
}

impl Ip2As {
    /// Build the full prioritized mapper (EuroIX/PeeringDB > registry),
    /// with default interconnection-data coverage.
    pub fn new(sim: &Sim) -> Ip2As {
        Ip2As::with_ix_coverage(sim, DEFAULT_IX_COVERAGE)
    }

    /// Registry-only mapping (the naive baseline; ambiguous at every
    /// provider-numbered border).
    pub fn registry_only(sim: &Sim) -> Ip2As {
        Ip2As::with_ix_coverage(sim, 0.0)
    }

    /// Build with a given fraction of interdomain interfaces covered by
    /// published interconnection data.
    pub fn with_ix_coverage(sim: &Sim, coverage: f64) -> Ip2As {
        let topo = sim.topo();
        let mut ix_data = HashMap::new();
        if coverage > 0.0 {
            for l in &topo.links {
                if l.kind != LinkKind::Inter {
                    continue;
                }
                if !chance(mix3(sim.seed() ^ 0x1c5d, l.id.0 as u64, 0), coverage) {
                    continue;
                }
                // The published record states which network each interface
                // of the interconnection belongs to.
                ix_data.insert(l.addr_a, topo.router_as(l.a));
                ix_data.insert(l.addr_b, topo.router_as(l.b));
            }
        }
        Ip2As {
            block_base: topo.block_base,
            n_ases: topo.ases.len() as u32,
            ix_data,
        }
    }

    /// Map an address to an AS: interconnection data first, then registry
    /// origin. Private addresses and unallocated space map to `None`
    /// (such hops cannot be attributed, and show up as flagged gaps in
    /// AS-level paths, §5.2.2).
    pub fn map(&self, addr: Addr) -> Option<AsId> {
        if addr.is_private() {
            return None;
        }
        if let Some(&a) = self.ix_data.get(&addr) {
            return Some(a);
        }
        let idx = (addr.0 >> 16).checked_sub(self.block_base >> 16)?;
        (idx < self.n_ases).then_some(AsId(idx))
    }

    /// Map a whole IP-level path to an AS-level path: unmappable hops are
    /// dropped, consecutive duplicates collapsed.
    pub fn as_path(&self, hops: impl IntoIterator<Item = Addr>) -> Vec<AsId> {
        let mut out: Vec<AsId> = Vec::new();
        for h in hops {
            if let Some(a) = self.map(h) {
                if out.last() != Some(&a) {
                    out.push(a);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::topology::{LinkKind, Rel};
    use revtr_netsim::SimConfig;

    #[test]
    fn hosts_map_to_their_origin() {
        let sim = Sim::build(SimConfig::tiny(), 4);
        let m = Ip2As::new(&sim);
        for pe in sim.topo().prefixes.iter().take(20) {
            let host = sim.host_addrs(pe.id).next().expect("host range");
            assert_eq!(m.map(host), Some(pe.owner));
        }
    }

    #[test]
    fn private_and_unallocated_unmappable() {
        let sim = Sim::build(SimConfig::tiny(), 4);
        let m = Ip2As::new(&sim);
        assert_eq!(m.map(Addr::new(10, 1, 2, 3)), None);
        assert_eq!(m.map(Addr::new(200, 1, 2, 3)), None);
    }

    #[test]
    fn ix_data_fixes_borders_registry_misses() {
        let sim = Sim::build(SimConfig::tiny(), 4);
        let naive = Ip2As::registry_only(&sim);
        let full = Ip2As::new(&sim);
        let o = sim.oracle();
        let (mut naive_ok, mut full_ok, mut n) = (0, 0, 0);
        for l in &sim.topo().links {
            if l.kind != LinkKind::Inter {
                continue;
            }
            for (addr, truth) in [
                (l.addr_a, sim.topo().router_as(l.a)),
                (l.addr_b, sim.topo().router_as(l.b)),
            ] {
                assert_eq!(o.true_as_of(addr), Some(truth));
                n += 1;
                if naive.map(addr) == Some(truth) {
                    naive_ok += 1;
                }
                if full.map(addr) == Some(truth) {
                    full_ok += 1;
                }
            }
        }
        assert!(n > 0);
        assert!(
            full_ok > naive_ok,
            "interconnection data must improve border mapping: {full_ok} vs {naive_ok} of {n}"
        );
        assert!(full_ok < n, "coverage is partial: some borders stay wrong");
    }

    #[test]
    fn border_interfaces_are_ambiguous() {
        // The customer-side interface of a provider-numbered /30 maps to
        // the provider under registry-only mapping — a deliberate,
        // realistic error.
        let sim = Sim::build(SimConfig::tiny(), 4);
        let m = Ip2As::registry_only(&sim);
        let o = sim.oracle();
        let mut found = false;
        for l in &sim.topo().links {
            if l.kind != LinkKind::Inter {
                continue;
            }
            let as_a = sim.topo().router_as(l.a);
            let as_b = sim.topo().router_as(l.b);
            // Identify (customer interface, provider AS) in either
            // orientation: the provider numbered the /30, so the customer's
            // interface maps (wrongly) to the provider.
            let pair = match sim.topo().asn(as_a).rel_with(as_b) {
                Some(Rel::Provider) => Some((l.addr_a, as_a, as_b)),
                Some(Rel::Customer) => Some((l.addr_b, as_b, as_a)),
                _ => None,
            };
            if let Some((cust_if, cust_as, prov_as)) = pair {
                assert_eq!(m.map(cust_if), Some(prov_as));
                assert_eq!(o.true_as_of(cust_if), Some(cust_as));
                found = true;
                break;
            }
        }
        assert!(found, "no customer-side border interface found");
    }

    #[test]
    fn as_path_collapses_and_skips() {
        let sim = Sim::build(SimConfig::tiny(), 4);
        let m = Ip2As::new(&sim);
        let p0 = &sim.topo().prefixes[0];
        let p1 = sim
            .topo()
            .prefixes
            .iter()
            .find(|p| p.owner != p0.owner)
            .expect("multiple ASes");
        let h0 = sim.host_addrs(p0.id).next().expect("host");
        let h0b = sim.host_addrs(p0.id).nth(1).expect("host");
        let h1 = sim.host_addrs(p1.id).next().expect("host");
        let path = m.as_path([h0, h0b, Addr::new(10, 0, 0, 1), h1]);
        assert_eq!(path, vec![p0.owner, p1.owner]);
    }
}
