//! # revtr-aliasing — measured identity: aliases, origins, relationships
//!
//! Reverse Traceroute constantly needs to answer "are these two addresses
//! the same router?", "which AS owns this hop?", and "is this AS link
//! plausible?" — with *measured*, imperfect data, exactly as the paper does
//! (Appx. B, §5.2.2). This crate provides:
//!
//! * [`Ip2As`] — registry-origin IP-to-AS mapping (correct for hosts,
//!   ambiguous at provider-numbered borders),
//! * [`RelationshipDb`] — a CAIDA-style relationship/customer-cone dataset
//!   (correct but incomplete), with the suspicious-link heuristic,
//! * [`AliasResolver`] — SNMPv3 + MIDAR-lite + point-to-point /30 alias
//!   evidence, deliberately partial.

#![warn(missing_docs)]

pub mod ip2as;
pub mod relationships;
pub mod resolver;

pub use ip2as::Ip2As;
pub use relationships::RelationshipDb;
pub use resolver::AliasResolver;
