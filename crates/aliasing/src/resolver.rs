//! Alias resolution (paper Appx. B.1): clustering IP addresses that belong
//! to the same router, using only measurable evidence.
//!
//! Three sources, mirroring the paper's toolbox:
//!
//! * **MIDAR-lite** — MIDAR infers aliases from shared IP-ID counters; it
//!   only works for routers with a shared monotonic counter and responsive
//!   addresses. We model its *output*: for "MIDAR-friendly" routers
//!   (≈55%, matching ITDK's partial coverage) and velocity-probe-responsive
//!   addresses (≈85%), the cluster id is recovered; everything else is
//!   unresolvable. This reproduces the paper's key observation that most
//!   accuracy mismatches stem from *missing* alias data (§5.2.2).
//! * **SNMPv3 fingerprinting** — unsolicited SNMPv3 requests return a
//!   stable engine id for ≈30% of routers (§4.4); this is an actual probe
//!   against the simulator.
//! * **Point-to-point subnetting** — two addresses in one /30 or /31 sit on
//!   opposite ends of a link; since traceroute reveals ingress and RR
//!   reveals egress interfaces, an RR hop followed by a traceroute hop in
//!   the same /30 indicates the same link and is used to align paths.

use parking_lot::RwLock;
use revtr_netsim::hash::{chance, mix3};
use revtr_netsim::{Addr, Sim};
use std::collections::HashMap;

/// Fraction of routers whose IP-ID behaviour lets MIDAR cluster them.
pub const MIDAR_ROUTER_COVERAGE: f64 = 0.55;
/// Fraction of a MIDAR-friendly router's addresses that respond to
/// velocity probing.
pub const MIDAR_ADDR_RESPONSE: f64 = 0.85;

/// Measured alias resolver.
pub struct AliasResolver<'s> {
    sim: &'s Sim,
    snmp_cache: RwLock<HashMap<Addr, Option<u64>>>,
}

impl<'s> AliasResolver<'s> {
    /// New resolver over a simulator.
    pub fn new(sim: &'s Sim) -> AliasResolver<'s> {
        AliasResolver {
            sim,
            snmp_cache: RwLock::new(HashMap::new()),
        }
    }

    /// SNMPv3 engine id for an address, if its router answers (probed once,
    /// then cached).
    pub fn snmp_id(&self, a: Addr) -> Option<u64> {
        if let Some(v) = self.snmp_cache.read().get(&a) {
            return *v;
        }
        let v = self.sim.snmp_probe(a);
        self.snmp_cache.write().insert(a, v);
        v
    }

    /// MIDAR-lite cluster id for an address, if recoverable.
    ///
    /// Models the output of a MIDAR run: available only for routers with
    /// monotonic shared IP-ID counters and responsive addresses.
    pub fn midar_id(&self, a: Addr) -> Option<u64> {
        let r = self.sim.topo().router_at(a)?;
        let friendly = chance(
            mix3(self.sim.seed() ^ 0x31da5, r.0 as u64, 0),
            MIDAR_ROUTER_COVERAGE,
        );
        if !friendly {
            return None;
        }
        let addr_ok = chance(
            mix3(self.sim.seed() ^ 0x31da6, a.0 as u64, r.0 as u64),
            MIDAR_ADDR_RESPONSE,
        );
        if !addr_ok {
            return None;
        }
        Some(mix3(self.sim.seed() ^ 0x31da7, r.0 as u64, 1))
    }

    /// True if measured evidence says `a` and `b` are the same router (or
    /// the same address).
    pub fn same_router(&self, a: Addr, b: Addr) -> bool {
        if a == b {
            return true;
        }
        if let (Some(x), Some(y)) = (self.snmp_id(a), self.snmp_id(b)) {
            if x == y {
                return true;
            }
        }
        matches!((self.midar_id(a), self.midar_id(b)), (Some(x), Some(y)) if x == y)
    }

    /// True if any alias evidence exists for this address at all — the
    /// paper's "allows for alias resolution" predicate behind the
    /// router-optimistic accuracy line (Fig. 5a).
    pub fn resolvable(&self, a: Addr) -> bool {
        self.snmp_id(a).is_some() || self.midar_id(a).is_some()
    }

    /// Path-alignment match: same router, or two ends of one point-to-point
    /// /30 or /31 (an RR egress facing a traceroute ingress across one
    /// link).
    pub fn hop_match(&self, a: Addr, b: Addr) -> bool {
        if self.same_router(a, b) {
            return true;
        }
        if a.is_private() || b.is_private() {
            return false;
        }
        a.same_slash30(b) || a.same_slash31(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    fn sim() -> Sim {
        Sim::build(SimConfig::tiny(), 8)
    }

    #[test]
    fn exact_match_always_resolves() {
        let s = sim();
        let r = AliasResolver::new(&s);
        let a = s.topo().links[0].addr_a;
        assert!(r.same_router(a, a));
        assert!(r.hop_match(a, a));
    }

    #[test]
    fn snmp_clusters_match_ground_truth_when_present() {
        let s = sim();
        let r = AliasResolver::new(&s);
        let o = s.oracle();
        let mut positive = 0;
        for router in s.topo().routers.iter().take(200) {
            let addrs = s.topo().router_addrs(router.id);
            for w in addrs.windows(2) {
                if r.same_router(w[0], w[1]) {
                    assert!(o.same_router(w[0], w[1]), "false positive alias");
                    positive += 1;
                }
            }
        }
        assert!(positive > 0, "no aliases resolved at all");
    }

    #[test]
    fn resolution_is_partial() {
        let s = sim();
        let r = AliasResolver::new(&s);
        let total = s.topo().links.len().min(300);
        let resolvable = s
            .topo()
            .links
            .iter()
            .take(total)
            .filter(|l| r.resolvable(l.addr_a))
            .count();
        assert!(resolvable > 0, "nothing resolvable");
        assert!(
            resolvable < total,
            "everything resolvable — missing-alias error mode not modelled"
        );
    }

    #[test]
    fn no_false_merges_across_routers() {
        let s = sim();
        let r = AliasResolver::new(&s);
        let o = s.oracle();
        // Sample pairs of addresses from different routers.
        let links = &s.topo().links;
        for i in (0..links.len().min(100)).step_by(3) {
            for j in (i + 5..links.len().min(100)).step_by(7) {
                let a = links[i].addr_a;
                let b = links[j].addr_b;
                if !o.same_router(a, b) {
                    assert!(!r.same_router(a, b), "false alias {a} ~ {b}");
                }
            }
        }
    }

    #[test]
    fn p2p_match_links_rr_and_traceroute_views() {
        let s = sim();
        let r = AliasResolver::new(&s);
        let l = &s.topo().links[0];
        assert!(r.hop_match(l.addr_a, l.addr_b), "/30 peers must hop-match");
    }

    #[test]
    fn private_addresses_never_p2p_match() {
        let s = sim();
        let r = AliasResolver::new(&s);
        assert!(!r.hop_match(Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2)));
    }
}
