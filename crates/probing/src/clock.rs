//! Virtual measurement clock.
//!
//! All latency in the reproduction is *virtual*: probes advance the clock by
//! their simulated RTT, spoofed batches by their 10-second collection
//! timeout (paper §5.2.4). The clock periodically flushes accumulated time
//! into the simulator so route churn progresses while campaigns run.

use parking_lot::Mutex;
use revtr_netsim::Sim;

/// Spoofed-probe batch collection timeout, in virtual milliseconds
/// (paper §5.2.4: "we empirically set this timeout to 10 seconds").
pub const SPOOF_BATCH_TIMEOUT_MS: f64 = 10_000.0;

/// Accumulated virtual time pending before a churn flush (1 virtual minute).
const FLUSH_THRESHOLD_MS: f64 = 60_000.0;

#[derive(Debug, Default)]
struct State {
    total_ms: f64,
    pending_ms: f64,
}

/// A shareable virtual clock.
#[derive(Debug, Default)]
pub struct Clock {
    state: Mutex<State>,
}

impl Clock {
    /// A clock at zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Total virtual milliseconds elapsed.
    pub fn now_ms(&self) -> f64 {
        self.state.lock().total_ms
    }

    /// Total virtual seconds elapsed.
    pub fn now_s(&self) -> f64 {
        self.now_ms() / 1000.0
    }

    /// Advance the clock; flushes churn time into `sim` once enough has
    /// accumulated.
    pub fn advance(&self, ms: f64, sim: &Sim) {
        debug_assert!(ms >= 0.0, "time flows forward");
        let flush = {
            let mut st = self.state.lock();
            st.total_ms += ms;
            st.pending_ms += ms;
            if st.pending_ms >= FLUSH_THRESHOLD_MS {
                let p = st.pending_ms;
                st.pending_ms = 0.0;
                Some(p)
            } else {
                None
            }
        };
        if let Some(p) = flush {
            sim.advance_hours(p / 3_600_000.0);
        }
    }

    /// Force any pending time into the simulator's churn process.
    pub fn flush(&self, sim: &Sim) {
        let p = {
            let mut st = self.state.lock();
            std::mem::take(&mut st.pending_ms)
        };
        if p > 0.0 {
            sim.advance_hours(p / 3_600_000.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    #[test]
    fn clock_accumulates_and_flushes() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        assert_eq!(clock.now_ms(), 0.0);
        clock.advance(1500.0, &sim);
        assert!((clock.now_ms() - 1500.0).abs() < 1e-9);
        assert!((clock.now_s() - 1.5).abs() < 1e-9);
        // Below threshold: sim time untouched until an explicit flush.
        assert_eq!(sim.now_hours(), 0.0);
        clock.flush(&sim);
        assert!((sim.now_hours() - 1500.0 / 3_600_000.0).abs() < 1e-12);
    }

    #[test]
    fn large_advance_flushes_automatically() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        clock.advance(120_000.0, &sim);
        assert!(sim.now_hours() > 0.0);
    }
}
