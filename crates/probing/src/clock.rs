//! Virtual measurement clock.
//!
//! All latency in the reproduction is *virtual*: probes advance the clock by
//! their simulated RTT, spoofed batches by their 10-second collection
//! timeout (paper §5.2.4). The clock periodically flushes accumulated time
//! into the simulator so route churn progresses while campaigns run.
//!
//! Every probe charges the clock, so this is one of the hottest shared
//! structures in a parallel campaign. Instead of one global mutex, time
//! accumulates into an array of cache-line-padded atomic slots: each
//! thread is assigned a slot by affinity and CAS-adds its advances there,
//! so concurrent workers touch disjoint cache lines. `now_ms` sums the
//! slots — totals stay immediately, globally accurate — and each slot
//! flushes its own pending time into churn at the same 1-virtual-minute
//! threshold as before, preserving churn semantics (serial runs flush at
//! bit-identical points).

use revtr_netsim::{CachePadded, Sim};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Spoofed-probe batch collection timeout, in virtual milliseconds
/// (paper §5.2.4: "we empirically set this timeout to 10 seconds").
pub const SPOOF_BATCH_TIMEOUT_MS: f64 = 10_000.0;

/// Accumulated virtual time pending before a churn flush (1 virtual minute).
const FLUSH_THRESHOLD_MS: f64 = 60_000.0;

/// Number of padded accumulation slots. Threads beyond this many share
/// slots (all updates are CAS loops, so sharing is safe, just slower).
const N_SLOTS: usize = 16;

/// Per-slot accumulators; both store `f64::to_bits`.
#[derive(Debug, Default)]
struct TimeSlot {
    total_ms: AtomicU64,
    pending_ms: AtomicU64,
}

/// CAS-add `delta` to an f64 stored as bits in `a`; returns the new value.
fn add_f64(a: &AtomicU64, delta: f64) -> f64 {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let new = f64::from_bits(cur) + delta;
        match a.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return new,
            Err(c) => cur = c,
        }
    }
}

/// Atomically take the whole f64 out of `a`, leaving zero.
fn take_f64(a: &AtomicU64) -> f64 {
    f64::from_bits(a.swap(0.0f64.to_bits(), Ordering::Relaxed))
}

thread_local! {
    static SLOT_IDX: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % N_SLOTS
    };

    /// This thread's own advances per `Clock` instance (keyed by unique
    /// id, mirroring `Counters`' shadow). A measurement runs synchronously
    /// on one thread, so diffing `thread_ms` around it yields a duration
    /// independent of what concurrent workers advance — unlike `now_ms`,
    /// which sums every thread and so depends on the worker count.
    static TIME_SHADOW: RefCell<HashMap<u64, f64>> = RefCell::new(HashMap::new());
}

/// Unique-id source for `Clock` instances (ids are never reused, so a
/// stale shadow entry can't alias a new instance).
static NEXT_CLOCK_ID: AtomicU64 = AtomicU64::new(1);

/// A shareable virtual clock.
#[derive(Debug)]
pub struct Clock {
    id: u64,
    slots: [CachePadded<TimeSlot>; N_SLOTS],
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::new()
    }
}

impl Clock {
    /// A clock at zero.
    pub fn new() -> Clock {
        Clock {
            id: NEXT_CLOCK_ID.fetch_add(1, Ordering::Relaxed),
            slots: Default::default(),
        }
    }

    /// Total virtual milliseconds elapsed (sum over all threads' advances;
    /// immediately accurate, not batched).
    pub fn now_ms(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| f64::from_bits(s.total_ms.load(Ordering::Relaxed)))
            .sum()
    }

    /// Total virtual seconds elapsed.
    pub fn now_s(&self) -> f64 {
        self.now_ms() / 1000.0
    }

    /// Virtual milliseconds accumulated but not yet flushed into the
    /// simulator's churn process (sum over all slots). The simulator's
    /// own `now_hours` lags true virtual time by exactly this amount, so
    /// `sim.now_hours() + pending_ms() / 3_600_000` is the authoritative
    /// "now" — immediate like [`Clock::now_ms`], but also counting time
    /// drivers advanced on the simulator directly.
    pub fn pending_ms(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| f64::from_bits(s.pending_ms.load(Ordering::Relaxed)))
            .sum()
    }

    /// Virtual milliseconds advanced *by the calling thread* on this
    /// clock. Telemetry spans diff this around a measurement: the delta is
    /// exactly the virtual time that measurement charged, regardless of
    /// concurrent workers (see `Counters::thread_snapshot` for the same
    /// attribution argument).
    pub fn thread_ms(&self) -> f64 {
        TIME_SHADOW.with(|s| s.borrow().get(&self.id).copied().unwrap_or(0.0))
    }

    /// Replace the calling thread's shadow accumulator with `ms` and
    /// return the previous value.
    ///
    /// The event-driven engine multiplexes many logical measurements onto
    /// one OS thread. Each control block owns a private shadow value; the
    /// loop swaps it in before advancing a measurement and swaps it back
    /// out after, so [`Clock::thread_ms`] diffs inside the measurement see
    /// exactly the same per-task accumulation — addend for addend — as a
    /// dedicated thread would.
    pub fn swap_thread_ms(&self, ms: f64) -> f64 {
        TIME_SHADOW.with(|s| std::mem::replace(s.borrow_mut().entry(self.id).or_insert(0.0), ms))
    }

    /// Advance the clock; flushes churn time into `sim` once this thread's
    /// slot has accumulated enough.
    pub fn advance(&self, ms: f64, sim: &Sim) {
        debug_assert!(ms >= 0.0, "time flows forward");
        TIME_SHADOW.with(|s| *s.borrow_mut().entry(self.id).or_insert(0.0) += ms);
        let slot = &self.slots[SLOT_IDX.with(|i| *i)];
        add_f64(&slot.total_ms, ms);
        if add_f64(&slot.pending_ms, ms) >= FLUSH_THRESHOLD_MS {
            let p = take_f64(&slot.pending_ms);
            if p > 0.0 {
                sim.advance_hours(p / 3_600_000.0);
            }
        }
    }

    /// Force all pending time (every slot) into the simulator's churn
    /// process.
    pub fn flush(&self, sim: &Sim) {
        let p: f64 = self.slots.iter().map(|s| take_f64(&s.pending_ms)).sum();
        if p > 0.0 {
            sim.advance_hours(p / 3_600_000.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    #[test]
    fn clock_accumulates_and_flushes() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        assert_eq!(clock.now_ms(), 0.0);
        clock.advance(1500.0, &sim);
        assert!((clock.now_ms() - 1500.0).abs() < 1e-9);
        assert!((clock.now_s() - 1.5).abs() < 1e-9);
        // Below threshold: sim time untouched until an explicit flush.
        assert_eq!(sim.now_hours(), 0.0);
        clock.flush(&sim);
        assert!((sim.now_hours() - 1500.0 / 3_600_000.0).abs() < 1e-12);
    }

    #[test]
    fn large_advance_flushes_automatically() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        clock.advance(120_000.0, &sim);
        assert!(sim.now_hours() > 0.0);
    }

    #[test]
    fn thread_ms_attributes_per_thread() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        clock.advance(10.0, &sim);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(clock.thread_ms(), 0.0, "fresh thread starts at zero");
                    clock.advance(2.5, &sim);
                    clock.advance(2.5, &sim);
                    assert_eq!(clock.thread_ms(), 5.0);
                });
            }
        });
        // Global time sums everyone; this thread's shadow only its own.
        assert_eq!(clock.now_ms(), 10.0 + 4.0 * 5.0);
        assert_eq!(clock.thread_ms(), 10.0);
        // Instances don't share shadows.
        let other = Clock::new();
        assert_eq!(other.thread_ms(), 0.0);
    }

    #[test]
    fn swap_thread_ms_multiplexes_shadows() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        // Two logical tasks time-sliced on this thread: each sees only its
        // own accumulation across the context switches.
        clock.advance(3.0, &sim); // task A
        let a = clock.swap_thread_ms(0.0); // switch to task B
        assert_eq!(a, 3.0);
        clock.advance(7.0, &sim); // task B
        let b = clock.swap_thread_ms(a); // switch back to task A
        assert_eq!(b, 7.0);
        clock.advance(1.0, &sim); // task A again
        assert_eq!(clock.thread_ms(), 4.0);
        // Global time saw every advance regardless of the swaps.
        assert_eq!(clock.now_ms(), 11.0);
    }

    #[test]
    fn concurrent_advances_sum_exactly() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let clock = Clock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        clock.advance(2.5, &sim);
                    }
                });
            }
        });
        // 8 threads x 1000 advances x 2.5 ms: each addend is exactly
        // representable, so the total is exact regardless of interleaving.
        assert_eq!(clock.now_ms(), 8.0 * 1000.0 * 2.5);
        // Everything below per-slot threshold: flush drains the remainder.
        clock.flush(&sim);
        assert!((sim.now_hours() - 20_000.0 / 3_600_000.0).abs() < 1e-9);
    }
}
