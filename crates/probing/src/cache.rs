//! Measurement reuse cache (the "cache" component of Table 4's ablation).
//!
//! revtr 2.0 caches traceroutes and RR measurements for a day and reuses
//! them across reverse traceroutes (Insight 1.4 / Appx. D.2.2). Entries are
//! keyed by the full probe identity and expire on *virtual* simulator time,
//! so staleness interacts correctly with route churn.

use parking_lot::RwLock;
use revtr_netsim::{Addr, RrReply, Sim, TraceResult};
use std::collections::HashMap;

/// Default cache TTL: one day of virtual time (paper Q1/D.2.2).
pub const DEFAULT_TTL_HOURS: f64 = 24.0;

#[derive(Clone, Debug)]
struct Entry<T> {
    at_hours: f64,
    value: T,
}

/// Key of an RR measurement: (sender, claimed source, destination).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RrKey {
    /// Emitting vantage point.
    pub sender: Addr,
    /// Claimed (spoofed) source.
    pub claimed: Addr,
    /// Probe target.
    pub dst: Addr,
}

/// Cached traceroutes, keyed by (source, destination).
type TracerouteMap = HashMap<(Addr, Addr), Entry<Option<TraceResult>>>;

/// TTL-based cache for traceroutes and RR replies.
#[derive(Debug)]
pub struct MeasurementCache {
    ttl_hours: f64,
    traceroutes: RwLock<TracerouteMap>,
    rr: RwLock<HashMap<RrKey, Entry<Option<RrReply>>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl MeasurementCache {
    /// Cache with the paper's one-day TTL.
    pub fn new() -> MeasurementCache {
        MeasurementCache::with_ttl(DEFAULT_TTL_HOURS)
    }

    /// Cache with a custom TTL (hours of virtual time).
    pub fn with_ttl(ttl_hours: f64) -> MeasurementCache {
        MeasurementCache {
            ttl_hours,
            traceroutes: RwLock::new(HashMap::new()),
            rr: RwLock::new(HashMap::new()),
            hits: Default::default(),
            misses: Default::default(),
        }
    }

    fn fresh(&self, at: f64, now: f64) -> bool {
        now - at <= self.ttl_hours
    }

    /// Cached traceroute from `src` to `dst`, if fresh.
    pub fn get_traceroute(&self, sim: &Sim, src: Addr, dst: Addr) -> Option<Option<TraceResult>> {
        let now = sim.now_hours();
        let g = self.traceroutes.read();
        match g.get(&(src, dst)) {
            Some(e) if self.fresh(e.at_hours, now) => {
                self.hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(e.value.clone())
            }
            _ => {
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a traceroute outcome (including "no answer").
    pub fn put_traceroute(&self, sim: &Sim, src: Addr, dst: Addr, v: Option<TraceResult>) {
        self.traceroutes.write().insert(
            (src, dst),
            Entry {
                at_hours: sim.now_hours(),
                value: v,
            },
        );
    }

    /// Cached RR measurement, if fresh.
    pub fn get_rr(&self, sim: &Sim, key: RrKey) -> Option<Option<RrReply>> {
        let now = sim.now_hours();
        let g = self.rr.read();
        match g.get(&key) {
            Some(e) if self.fresh(e.at_hours, now) => {
                self.hits
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(e.value.clone())
            }
            _ => {
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Store an RR outcome (including "no answer").
    pub fn put_rr(&self, sim: &Sim, key: RrKey, v: Option<RrReply>) {
        self.rr.write().insert(
            key,
            Entry {
                at_hours: sim.now_hours(),
                value: v,
            },
        );
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Drop everything (e.g. when rebuilding an atlas from scratch).
    pub fn clear(&self) {
        self.traceroutes.write().clear();
        self.rr.write().clear();
    }
}

impl Default for MeasurementCache {
    fn default() -> Self {
        MeasurementCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    #[test]
    fn cache_roundtrip_and_expiry() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let cache = MeasurementCache::with_ttl(1.0);
        let a = Addr::new(1, 1, 1, 1);
        let b = Addr::new(2, 2, 2, 2);
        assert!(cache.get_traceroute(&sim, a, b).is_none());
        cache.put_traceroute(&sim, a, b, None);
        assert_eq!(cache.get_traceroute(&sim, a, b), Some(None));
        // Expire by advancing virtual time beyond the TTL.
        sim.advance_hours(2.0);
        assert!(cache.get_traceroute(&sim, a, b).is_none());
        let (h, m) = cache.stats();
        assert_eq!(h, 1);
        assert_eq!(m, 2);
    }

    #[test]
    fn rr_keys_distinguish_spoofing() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let cache = MeasurementCache::new();
        let k1 = RrKey {
            sender: Addr(1),
            claimed: Addr(1),
            dst: Addr(9),
        };
        let k2 = RrKey {
            sender: Addr(1),
            claimed: Addr(2),
            dst: Addr(9),
        };
        cache.put_rr(&sim, k1, None);
        assert!(cache.get_rr(&sim, k1).is_some());
        assert!(cache.get_rr(&sim, k2).is_none());
    }
}
