//! Measurement reuse cache (the "cache" component of Table 4's ablation).
//!
//! revtr 2.0 caches traceroutes and RR measurements for a day and reuses
//! them across reverse traceroutes (Insight 1.4 / Appx. D.2.2). Entries are
//! keyed by the full probe identity and expire on *virtual* simulator time,
//! so staleness interacts correctly with route churn.
//!
//! Both maps are lock-striped ([`StripedMap`]): every cached probe on the
//! hot path does a lookup here, and a single global `RwLock` per map turns
//! into a convoy under parallel campaign workers. The hit/miss/insert/
//! expired counters are cache-line padded for the same reason.

use revtr_netsim::{Addr, CachePadded, RrReply, Sim, StripedMap, TraceResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default cache TTL: one day of virtual time (paper Q1/D.2.2).
pub const DEFAULT_TTL_HOURS: f64 = 24.0;

#[derive(Clone, Debug)]
struct Entry<T> {
    at_hours: f64,
    value: T,
}

/// Key of an RR measurement: (sender, claimed source, destination).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RrKey {
    /// Emitting vantage point.
    pub sender: Addr,
    /// Claimed (spoofed) source.
    pub claimed: Addr,
    /// Probe target.
    pub dst: Addr,
}

/// A cached RR outcome together with the send-time provenance of the
/// original probe. Cache hits must replay under the *original* nonce and
/// churn epochs — not the hit-time ones — or the audit layer could never
/// re-derive the reply path the stamps actually took.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedRr {
    /// The observed reply (`None` = genuinely unanswered).
    pub reply: Option<RrReply>,
    /// Per-probe nonce the original send routed under.
    pub nonce: u64,
    /// Churn epoch of the destination's prefix at send time (`None` for
    /// infrastructure destinations, which are never churned).
    pub fwd_epoch: Option<u32>,
    /// Churn epoch of the claimed source's prefix at send time.
    pub rep_epoch: Option<u32>,
}

/// Point-in-time cache effectiveness counters.
///
/// `hits + misses` equals total lookups; `expired` counts the subset of
/// misses where an entry existed but had outlived the TTL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a fresh entry.
    pub hits: u64,
    /// Lookups not answered (absent or expired).
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Misses caused by TTL expiry (entry present but stale).
    pub expired: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cached traceroutes, keyed by (source, destination).
type TracerouteMap = StripedMap<(Addr, Addr), Entry<Option<TraceResult>>>;

/// TTL-based cache for traceroutes and RR replies.
#[derive(Debug)]
pub struct MeasurementCache {
    ttl_hours: f64,
    traceroutes: TracerouteMap,
    rr: StripedMap<RrKey, Entry<CachedRr>>,
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
    inserts: CachePadded<AtomicU64>,
    expired: CachePadded<AtomicU64>,
}

impl MeasurementCache {
    /// Cache with the paper's one-day TTL.
    pub fn new() -> MeasurementCache {
        MeasurementCache::with_ttl(DEFAULT_TTL_HOURS)
    }

    /// Cache with a custom TTL (hours of virtual time).
    pub fn with_ttl(ttl_hours: f64) -> MeasurementCache {
        MeasurementCache {
            ttl_hours,
            traceroutes: StripedMap::new(),
            rr: StripedMap::new(),
            hits: Default::default(),
            misses: Default::default(),
            inserts: Default::default(),
            expired: Default::default(),
        }
    }

    fn fresh(&self, at: f64, now: f64) -> bool {
        // Strictly less: an entry whose age equals the TTL has expired.
        // [`CacheStats::expired`] documents post-TTL lookups as misses, and
        // the boundary lookup is a post-TTL lookup — `<=` silently served
        // one-day-old measurements on the exact-24h boundary.
        now - at < self.ttl_hours
    }

    /// Classify a looked-up entry, bumping the stats counters.
    fn classify<T>(&self, entry: Option<Entry<T>>, now: f64) -> Option<T> {
        match entry {
            Some(e) if self.fresh(e.at_hours, now) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value)
            }
            Some(_) => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Cached traceroute from `src` to `dst`, if fresh.
    pub fn get_traceroute(&self, sim: &Sim, src: Addr, dst: Addr) -> Option<Option<TraceResult>> {
        let now = sim.now_hours();
        self.classify(self.traceroutes.get(&(src, dst)), now)
    }

    /// Store a traceroute outcome (including "no answer").
    pub fn put_traceroute(&self, sim: &Sim, src: Addr, dst: Addr, v: Option<TraceResult>) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.traceroutes.insert(
            (src, dst),
            Entry {
                at_hours: sim.now_hours(),
                value: v,
            },
        );
    }

    /// Cached RR measurement (reply + original send provenance), if fresh.
    pub fn get_rr(&self, sim: &Sim, key: RrKey) -> Option<CachedRr> {
        let now = sim.now_hours();
        self.classify(self.rr.get(&key), now)
    }

    /// Store an RR outcome (including "no answer") with its provenance.
    pub fn put_rr(&self, sim: &Sim, key: RrKey, v: CachedRr) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.rr.insert(
            key,
            Entry {
                at_hours: sim.now_hours(),
                value: v,
            },
        );
    }

    /// Effectiveness counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }

    /// Drop everything (e.g. when rebuilding an atlas from scratch).
    pub fn clear(&self) {
        self.traceroutes.clear();
        self.rr.clear();
    }
}

impl Default for MeasurementCache {
    fn default() -> Self {
        MeasurementCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    #[test]
    fn cache_roundtrip_and_expiry() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let cache = MeasurementCache::with_ttl(1.0);
        let a = Addr::new(1, 1, 1, 1);
        let b = Addr::new(2, 2, 2, 2);
        assert!(cache.get_traceroute(&sim, a, b).is_none());
        cache.put_traceroute(&sim, a, b, None);
        assert_eq!(cache.get_traceroute(&sim, a, b), Some(None));
        // Expire by advancing virtual time beyond the TTL.
        sim.advance_hours(2.0);
        assert!(cache.get_traceroute(&sim, a, b).is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.expired, 1, "the post-TTL miss found a stale entry");
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ttl_boundary_entry_is_expired_not_fresh() {
        // Regression pin for the `<=` boundary bug: an entry aged exactly
        // TTL hours must classify as an expired miss, matching the
        // `CacheStats::expired` contract ("post-TTL lookups are misses").
        let sim = Sim::build(SimConfig::tiny(), 3);
        let cache = MeasurementCache::with_ttl(1.0);
        let a = Addr::new(1, 1, 1, 1);
        let b = Addr::new(2, 2, 2, 2);
        cache.put_traceroute(&sim, a, b, None);
        sim.advance_hours(1.0);
        assert!(
            cache.get_traceroute(&sim, a, b).is_none(),
            "entry exactly at TTL must not be served"
        );
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 1);
        assert_eq!(s.expired, 1, "boundary miss is classified as expired");
        // Just inside the TTL stays fresh.
        let c = Addr::new(3, 3, 3, 3);
        cache.put_traceroute(&sim, a, c, None);
        sim.advance_hours(0.5);
        assert_eq!(cache.get_traceroute(&sim, a, c), Some(None));
    }

    #[test]
    fn rr_keys_distinguish_spoofing() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let cache = MeasurementCache::new();
        let k1 = RrKey {
            sender: Addr(1),
            claimed: Addr(1),
            dst: Addr(9),
        };
        let k2 = RrKey {
            sender: Addr(1),
            claimed: Addr(2),
            dst: Addr(9),
        };
        let miss = CachedRr {
            reply: None,
            nonce: 0,
            fwd_epoch: None,
            rep_epoch: None,
        };
        cache.put_rr(&sim, k1, miss);
        assert!(cache.get_rr(&sim, k1).is_some());
        assert!(cache.get_rr(&sim, k2).is_none());
    }

    #[test]
    fn concurrent_mixed_load_keeps_counts_consistent() {
        let sim = Sim::build(SimConfig::tiny(), 3);
        let cache = MeasurementCache::new();
        std::thread::scope(|s| {
            for t in 0u32..8 {
                let cache = &cache;
                let sim = &sim;
                s.spawn(move || {
                    for i in 0u32..200 {
                        let a = Addr::new(10, (t % 4) as u8, (i % 16) as u8, 1);
                        let b = Addr::new(10, 0, 0, 2);
                        if cache.get_traceroute(sim, a, b).is_none() {
                            cache.put_traceroute(sim, a, b, None);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 200, "every lookup is classified");
        assert!(s.hits > 0 && s.misses > 0);
        assert_eq!(s.expired, 0);
        assert!(
            s.inserts >= 4 * 16,
            "each distinct key inserted at least once"
        );
    }
}
