//! The prober: issue probes against the simulated Internet with accounting,
//! virtual latency, optional measurement reuse, and bounded retries.
//!
//! A [`Prober`] is cheap to clone and thread-safe; campaign code clones one
//! per worker so counters/clock/cache are shared.
//!
//! # Faults and retries
//!
//! When the sim's [`revtr_netsim::FaultConfig`] enables faults, individual
//! probe attempts can be lost (transient loss, ICMP rate limiting, VP
//! spoof-filter flaps). The prober re-sends fault-lost attempts up to the
//! per-kind budgets of its [`RetryPolicy`], charging virtual backoff
//! between attempts and counting every re-send in
//! [`ProbeKind::Retries`] / every fault loss in [`ProbeKind::Lost`].
//! Genuine unresponsiveness is deterministic in-sim, so it is *not*
//! retried: budgets are spent only where a real retry could help, and a
//! fault-free sim behaves bit-identically whatever the budgets are.

use crate::cache::{CachedRr, MeasurementCache, RrKey};
use crate::clock::{Clock, SPOOF_BATCH_TIMEOUT_MS};
use crate::counters::{Counters, ProbeKind};
use revtr_netsim::{Addr, EchoReply, RrReply, Sim, TraceResult, TsReply};
use revtr_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Timeout charged for an unanswered non-spoofed probe (virtual ms).
pub const PROBE_TIMEOUT_MS: f64 = 2_000.0;

/// Timeout charged for a traceroute that never completes (virtual ms).
pub const TRACEROUTE_TIMEOUT_MS: f64 = 5_000.0;

/// Per-kind retry budgets and backoff. An *attempt budget* of `n` means
/// one initial send plus up to `n - 1` re-sends of fault-lost attempts;
/// the default budgets (all 1) disable retrying entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempt budget for plain pings.
    pub ping_attempts: u32,
    /// Attempt budget for non-spoofed RR pings (and atlas RR pings).
    pub rr_attempts: u32,
    /// Attempt budget for TS-prespec pings.
    pub ts_attempts: u32,
    /// Attempt budget for whole traceroutes.
    pub traceroute_attempts: u32,
    /// Rounds a spoofed batch re-collects its fault-lost pairs (each
    /// round costs one batch collection timeout).
    pub batch_attempts: u32,
    /// Virtual backoff before re-send number `k` (charged as
    /// `k · backoff_ms`; linear, bounded by the attempt budget).
    pub backoff_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ping_attempts: 1,
            rr_attempts: 1,
            ts_attempts: 1,
            traceroute_attempts: 1,
            batch_attempts: 1,
            backoff_ms: 0.0,
        }
    }
}

impl RetryPolicy {
    /// The same attempt budget for every probe kind, no backoff.
    pub fn uniform(attempts: u32) -> RetryPolicy {
        let a = attempts.max(1);
        RetryPolicy {
            ping_attempts: a,
            rr_attempts: a,
            ts_attempts: a,
            traceroute_attempts: a,
            batch_attempts: a,
            backoff_ms: 0.0,
        }
    }
}

/// Why a probe produced no reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeLoss {
    /// The destination genuinely did not answer (deterministic in-sim;
    /// retrying cannot help).
    Unanswered,
    /// Every attempt in the budget was lost to injected faults; a larger
    /// budget (or later retry) might still succeed.
    Transient,
}

/// Send-time provenance of one Record Route observation: everything the
/// audit layer needs to replay the probe's reply leg against the oracle
/// ([`revtr_netsim::oracle::Oracle::replay_rr_reply_stamps`]). A cache hit
/// carries the provenance of the *original* send — the stamps in the
/// cached reply were produced under that nonce and those churn epochs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RrProvenance {
    /// Emitting vantage point.
    pub sender: Addr,
    /// Claimed (possibly spoofed) source the reply routed to.
    pub claimed: Addr,
    /// Probe target.
    pub dst: Addr,
    /// Per-probe nonce the send routed under.
    pub nonce: u64,
    /// Churn epoch of the destination's prefix at send time (`None` for
    /// infrastructure destinations).
    pub fwd_epoch: Option<u32>,
    /// Churn epoch of the claimed source's prefix at send time.
    pub rep_epoch: Option<u32>,
    /// True if this observation was served from the measurement cache.
    pub from_cache: bool,
}

/// Result of a spoofed RR batch, with per-pair fault attribution.
#[derive(Clone, Debug)]
pub struct BatchReply {
    /// Per-pair replies, in input order (`None` = no reply).
    pub replies: Vec<Option<RrReply>>,
    /// Per-pair replay provenance, `Some` exactly where `replies` is
    /// (cache hits carry the original send's provenance).
    pub provenance: Vec<Option<RrProvenance>>,
    /// `transient[i]` is true when pair `i`'s misses were fault losses
    /// (its retry budget ran out) rather than genuine unresponsiveness.
    pub transient: Vec<bool>,
    /// Collection timeouts actually charged (0 for an empty or fully
    /// cached batch; > 1 when fault-lost pairs were re-collected).
    pub timeouts: u32,
}

/// Probe issuance facade.
#[derive(Clone)]
pub struct Prober<'s> {
    sim: &'s Sim,
    counters: Arc<Counters>,
    clock: Arc<Clock>,
    cache: Arc<MeasurementCache>,
    use_cache: bool,
    retry: RetryPolicy,
    nonce: Arc<AtomicU64>,
    telemetry: Telemetry,
}

impl<'s> Prober<'s> {
    /// New prober with fresh shared state, caching enabled, no retries.
    pub fn new(sim: &'s Sim) -> Prober<'s> {
        Prober {
            sim,
            counters: Arc::new(Counters::new()),
            clock: Arc::new(Clock::new()),
            cache: Arc::new(MeasurementCache::new()),
            use_cache: true,
            retry: RetryPolicy::default(),
            nonce: Arc::new(AtomicU64::new(1)),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Same shared state, with caching toggled (the Table 4 "cache"
    /// ablation knob).
    pub fn with_cache_enabled(&self, enabled: bool) -> Prober<'s> {
        let mut p = self.clone();
        p.use_cache = enabled;
        p
    }

    /// Same shared state, with a different retry policy.
    pub fn with_retry_policy(&self, retry: RetryPolicy) -> Prober<'s> {
        let mut p = self.clone();
        p.retry = retry;
        p
    }

    /// Same shared state (counters, clock, cache), with the given
    /// telemetry handle attached. The default handle is
    /// [`Telemetry::disabled`], under which every instrumentation point
    /// is a single-branch no-op.
    pub fn with_telemetry(&self, telemetry: Telemetry) -> Prober<'s> {
        let mut p = self.clone();
        p.telemetry = telemetry;
        p
    }

    /// The simulator this prober probes.
    pub fn sim(&self) -> &'s Sim {
        self.sim
    }

    /// Shared probe counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Shared measurement cache.
    pub fn cache(&self) -> &MeasurementCache {
        &self.cache
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The attached telemetry handle (disabled unless set via
    /// [`Prober::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Count one fault-attributed probe loss in telemetry.
    fn tele_lost(&self) {
        self.telemetry.counter_add("probing.fault_lost", 1);
    }

    fn next_nonce(&self) -> u64 {
        self.nonce.fetch_add(1, Ordering::Relaxed)
    }

    fn charge(&self, reply_rtt: Option<f64>) {
        match reply_rtt {
            Some(rtt) => self.clock.advance(rtt, self.sim),
            None => self.clock.advance(PROBE_TIMEOUT_MS, self.sim),
        }
    }

    /// Draw the fault fate of one probe attempt toward `dst` (spoofed
    /// attempts also pass the sending VP for the flap check). Consumes a
    /// nonce — and takes any lock — only when faults are active, so
    /// fault-free runs stay bit-identical to pre-fault builds.
    fn fault_lost(&self, spoof_vp: Option<Addr>, dst: Addr) -> bool {
        let faults = self.sim.faults();
        if !faults.any_enabled() {
            return false;
        }
        if faults.probe_lost(self.next_nonce()) {
            return true;
        }
        if let Some(vp) = spoof_vp {
            if faults.vp_spoof_flapped(vp, self.sim.now_hours()) {
                return true;
            }
        }
        match self.sim.responder_router(dst) {
            Some(r) => !faults.icmp_allowed(r, self.clock.now_ms()),
            None => false,
        }
    }

    /// Draw the adversarial-scenario fate of one *option-carrying* probe
    /// attempt (RR/TS ride the router slow path, which is where spoof
    /// filters and asymmetric rate limiters bite). Unlike [`Prober::fault_lost`]
    /// this is pure in stable entity keys — it consumes no nonce and reads
    /// no clock — so cache hit/miss patterns stay schedule-invariant and
    /// campaigns fingerprint identically across dispatch worker counts.
    fn scenario_lost(
        &self,
        spoof_vp: Option<Addr>,
        claimed: Addr,
        dst: Addr,
        attempt: u32,
    ) -> bool {
        if !self.sim.scenario().any_enabled() {
            return false;
        }
        if let Some(vp) = spoof_vp {
            if self.sim.scenario_spoof_dropped(vp, dst) {
                return true;
            }
        }
        let sender = spoof_vp.unwrap_or(claimed);
        self.sim
            .scenario_rate_limited(dst, sender, spoof_vp.is_some(), u64::from(attempt))
    }

    /// Churn epochs of the (destination, claimed source) prefixes at this
    /// instant. Must be read *immediately before* the sim probe call —
    /// `charge` can flush virtual hours into the sim and bump epochs.
    fn epochs(&self, dst: Addr, claimed: Addr) -> (Option<u32>, Option<u32>) {
        (
            self.sim.host_prefix(dst).map(|p| self.sim.prefix_epoch(p)),
            self.sim
                .host_prefix(claimed)
                .map(|p| self.sim.prefix_epoch(p)),
        )
    }

    /// Charge backoff before re-send number `attempt` (1-based) and count
    /// the retry.
    fn charge_retry(&self, attempt: u32) {
        self.counters.bump(ProbeKind::Retries);
        self.telemetry.counter_add("probing.retries", 1);
        if self.retry.backoff_ms > 0.0 {
            self.clock
                .advance(self.retry.backoff_ms * attempt as f64, self.sim);
        }
    }

    // ---- pings ------------------------------------------------------------

    /// Plain ping, retrying fault-lost attempts within budget.
    pub fn ping(&self, src: Addr, dst: Addr) -> Option<EchoReply> {
        for attempt in 0..self.retry.ping_attempts.max(1) {
            if attempt > 0 {
                self.charge_retry(attempt);
            }
            self.counters.bump(ProbeKind::Ping);
            if self.fault_lost(None, dst) {
                self.counters.bump(ProbeKind::Lost);
                self.tele_lost();
                self.charge(None);
                continue;
            }
            let r = self.sim.ping(src, dst);
            self.charge(r.as_ref().map(|x| x.rtt_ms));
            return r;
        }
        None
    }

    // ---- record route -------------------------------------------------------

    /// Non-spoofed RR ping from `src`, reusing a fresh cached result when
    /// caching is enabled. Collapses [`Prober::rr_ping_outcome`]'s loss
    /// attribution.
    pub fn rr_ping(&self, src: Addr, dst: Addr) -> Option<RrReply> {
        self.rr_ping_outcome(src, dst).ok()
    }

    /// Non-spoofed RR ping distinguishing *why* it failed: genuinely
    /// unanswered (persistent) vs fault-lost beyond the retry budget
    /// (transient).
    pub fn rr_ping_outcome(&self, src: Addr, dst: Addr) -> Result<RrReply, ProbeLoss> {
        self.rr_ping_observed(src, dst).map(|(r, _)| r)
    }

    /// [`Prober::rr_ping_outcome`] plus the send-time provenance needed to
    /// replay the observation (stitch-trace audit).
    pub fn rr_ping_observed(
        &self,
        src: Addr,
        dst: Addr,
    ) -> Result<(RrReply, RrProvenance), ProbeLoss> {
        let key = RrKey {
            sender: src,
            claimed: src,
            dst,
        };
        if self.use_cache {
            if let Some(hit) = self.cache.get_rr(self.sim, key) {
                let prov = RrProvenance {
                    sender: src,
                    claimed: src,
                    dst,
                    nonce: hit.nonce,
                    fwd_epoch: hit.fwd_epoch,
                    rep_epoch: hit.rep_epoch,
                    from_cache: true,
                };
                return hit.reply.map(|r| (r, prov)).ok_or(ProbeLoss::Unanswered);
            }
        }
        for attempt in 0..self.retry.rr_attempts.max(1) {
            if attempt > 0 {
                self.charge_retry(attempt);
            }
            self.counters.bump(ProbeKind::Rr);
            if self.fault_lost(None, dst) || self.scenario_lost(None, src, dst, attempt) {
                self.counters.bump(ProbeKind::Lost);
                self.tele_lost();
                self.charge(None);
                continue;
            }
            let nonce = self.next_nonce();
            let (fwd_epoch, rep_epoch) = self.epochs(dst, src);
            let r = self.sim.rr_ping(src, dst, nonce);
            self.charge(r.as_ref().map(|x| x.rtt_ms));
            if self.use_cache {
                // Cache only genuine outcomes; fault losses above are
                // transient and must not be negative-cached.
                self.cache.put_rr(
                    self.sim,
                    key,
                    CachedRr {
                        reply: r.clone(),
                        nonce,
                        fwd_epoch,
                        rep_epoch,
                    },
                );
            }
            let prov = RrProvenance {
                sender: src,
                claimed: src,
                dst,
                nonce,
                fwd_epoch,
                rep_epoch,
                from_cache: false,
            };
            return r.map(|x| (x, prov)).ok_or(ProbeLoss::Unanswered);
        }
        self.telemetry.counter_add("probing.transient_exhausted", 1);
        Err(ProbeLoss::Transient)
    }

    /// RR ping issued for the background RR-atlas (§4.2): identical
    /// semantics, separate accounting (offline budget).
    pub fn atlas_rr_ping(&self, sender: Addr, claimed: Addr, dst: Addr) -> Option<RrReply> {
        let spoofed = sender != claimed;
        for attempt in 0..self.retry.rr_attempts.max(1) {
            if attempt > 0 {
                self.charge_retry(attempt);
            }
            self.counters.bump(ProbeKind::AtlasRr);
            if self.fault_lost(spoofed.then_some(sender), dst)
                || self.scenario_lost(spoofed.then_some(sender), claimed, dst, attempt)
            {
                self.counters.bump(ProbeKind::Lost);
                self.tele_lost();
                self.charge(None);
                continue;
            }
            let r = self
                .sim
                .rr_ping_from(sender, claimed, dst, self.next_nonce());
            self.charge(r.as_ref().map(|x| x.rtt_ms));
            return r;
        }
        None
    }

    /// A batch of spoofed RR pings, all claiming source `claimed`, one per
    /// `(vantage point, destination)` pair. Each *collection round* costs
    /// one 10-second timeout of virtual time (§5.2.4), which is what makes
    /// batch count the dominant latency factor (Fig. 5c); fault-lost pairs
    /// are re-collected for up to [`RetryPolicy::batch_attempts`] rounds.
    /// An empty or fully cached batch costs nothing.
    pub fn spoofed_rr_batch(&self, pairs: &[(Addr, Addr)], claimed: Addr) -> BatchReply {
        self.spoofed_rr_batch_at(pairs, claimed, &[])
    }

    /// [`Prober::spoofed_rr_batch`] with per-pair scenario attempt bases:
    /// `attempt_base[i]` (missing entries read 0) counts the pair's prior
    /// re-batches, so adversarial rate limiters re-roll their per-attempt
    /// drop on every re-collection instead of repeating the same verdict.
    /// Pure request-local state — passing it keeps campaigns
    /// worker-count-invariant where a shared counter would not.
    pub fn spoofed_rr_batch_at(
        &self,
        pairs: &[(Addr, Addr)],
        claimed: Addr,
        attempt_base: &[u32],
    ) -> BatchReply {
        let n = pairs.len();
        let mut out = BatchReply {
            replies: vec![None; n],
            provenance: vec![None; n],
            transient: vec![false; n],
            timeouts: 0,
        };
        let mut pending: Vec<usize> = Vec::with_capacity(n);
        for (i, &(vp, dst)) in pairs.iter().enumerate() {
            let key = RrKey {
                sender: vp,
                claimed,
                dst,
            };
            if self.use_cache {
                if let Some(hit) = self.cache.get_rr(self.sim, key) {
                    if hit.reply.is_some() {
                        out.provenance[i] = Some(RrProvenance {
                            sender: vp,
                            claimed,
                            dst,
                            nonce: hit.nonce,
                            fwd_epoch: hit.fwd_epoch,
                            rep_epoch: hit.rep_epoch,
                            from_cache: true,
                        });
                    }
                    out.replies[i] = hit.reply;
                    continue;
                }
            }
            pending.push(i);
        }
        if self.telemetry.is_enabled() && n > 0 {
            self.telemetry.counter_add("probing.batches", 1);
            self.telemetry.record("probing.batch.pairs", n as u64);
            self.telemetry
                .counter_add("probing.batch.cached_pairs", (n - pending.len()) as u64);
        }
        for round in 0..self.retry.batch_attempts.max(1) {
            if pending.is_empty() {
                break;
            }
            if round > 0 {
                self.counters.add(ProbeKind::Retries, pending.len() as u64);
                self.telemetry
                    .counter_add("probing.retries", pending.len() as u64);
            }
            let mut still_pending = Vec::new();
            for &i in &pending {
                let (vp, dst) = pairs[i];
                self.counters.bump(ProbeKind::SpoofRr);
                let att = attempt_base.get(i).copied().unwrap_or(0) + round;
                if self.fault_lost(Some(vp), dst) || self.scenario_lost(Some(vp), claimed, dst, att)
                {
                    self.counters.bump(ProbeKind::Lost);
                    self.tele_lost();
                    out.transient[i] = true;
                    still_pending.push(i);
                    continue;
                }
                let nonce = self.next_nonce();
                let (fwd_epoch, rep_epoch) = self.epochs(dst, claimed);
                let r = self.sim.rr_ping_from(vp, claimed, dst, nonce);
                if self.use_cache {
                    let key = RrKey {
                        sender: vp,
                        claimed,
                        dst,
                    };
                    self.cache.put_rr(
                        self.sim,
                        key,
                        CachedRr {
                            reply: r.clone(),
                            nonce,
                            fwd_epoch,
                            rep_epoch,
                        },
                    );
                }
                out.provenance[i] = r.as_ref().map(|_| RrProvenance {
                    sender: vp,
                    claimed,
                    dst,
                    nonce,
                    fwd_epoch,
                    rep_epoch,
                    from_cache: false,
                });
                out.replies[i] = r;
                out.transient[i] = false;
            }
            out.timeouts += 1;
            self.clock.advance(SPOOF_BATCH_TIMEOUT_MS, self.sim);
            pending = still_pending;
        }
        if self.telemetry.is_enabled() && n > 0 {
            self.telemetry
                .record("probing.batch.rounds", u64::from(out.timeouts));
            self.telemetry
                .counter_add("probing.batch.timeouts", u64::from(out.timeouts));
        }
        out
    }

    // ---- timestamp -------------------------------------------------------------

    /// Non-spoofed TS-prespec ping. Collapses
    /// [`Prober::ts_ping_outcome`]'s loss attribution.
    pub fn ts_ping(&self, src: Addr, dst: Addr, prespec: &[Addr]) -> Option<TsReply> {
        self.ts_ping_outcome(src, dst, prespec).ok()
    }

    /// Non-spoofed TS-prespec ping distinguishing persistent from
    /// transient (fault-budget-exhausted) failure.
    pub fn ts_ping_outcome(
        &self,
        src: Addr,
        dst: Addr,
        prespec: &[Addr],
    ) -> Result<TsReply, ProbeLoss> {
        for attempt in 0..self.retry.ts_attempts.max(1) {
            if attempt > 0 {
                self.charge_retry(attempt);
            }
            self.counters.bump(ProbeKind::Ts);
            if self.fault_lost(None, dst) || self.scenario_lost(None, src, dst, attempt) {
                self.counters.bump(ProbeKind::Lost);
                self.tele_lost();
                self.charge(None);
                continue;
            }
            let r = self
                .sim
                .ts_ping_from(src, src, dst, prespec, self.next_nonce());
            self.charge(r.as_ref().map(|x| x.rtt_ms));
            return r.ok_or(ProbeLoss::Unanswered);
        }
        self.telemetry.counter_add("probing.transient_exhausted", 1);
        Err(ProbeLoss::Transient)
    }

    /// A batch of spoofed TS pings (one collection timeout per round, as
    /// for [`Prober::spoofed_rr_batch`]; fault-lost probes re-collect
    /// within [`RetryPolicy::batch_attempts`]).
    pub fn spoofed_ts_batch(
        &self,
        probes: &[(Addr, Addr, Vec<Addr>)],
        claimed: Addr,
    ) -> Vec<Option<TsReply>> {
        if probes.is_empty() {
            return Vec::new();
        }
        let n = probes.len();
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("probing.ts_batches", 1);
            self.telemetry.record("probing.ts_batch.pairs", n as u64);
        }
        let mut out: Vec<Option<TsReply>> = vec![None; n];
        let mut pending: Vec<usize> = (0..n).collect();
        for round in 0..self.retry.batch_attempts.max(1) {
            if pending.is_empty() {
                break;
            }
            if round > 0 {
                self.counters.add(ProbeKind::Retries, pending.len() as u64);
                self.telemetry
                    .counter_add("probing.retries", pending.len() as u64);
            }
            let mut still_pending = Vec::new();
            for &i in &pending {
                let (vp, dst, prespec) = &probes[i];
                self.counters.bump(ProbeKind::SpoofTs);
                if self.fault_lost(Some(*vp), *dst)
                    || self.scenario_lost(Some(*vp), claimed, *dst, round)
                {
                    self.counters.bump(ProbeKind::Lost);
                    self.tele_lost();
                    still_pending.push(i);
                    continue;
                }
                out[i] = self
                    .sim
                    .ts_ping_from(*vp, claimed, *dst, prespec, self.next_nonce());
            }
            self.clock.advance(SPOOF_BATCH_TIMEOUT_MS, self.sim);
            pending = still_pending;
        }
        out
    }

    // ---- traceroute --------------------------------------------------------------

    /// (Paris) traceroute with caching.
    pub fn traceroute(&self, src: Addr, dst: Addr) -> Option<TraceResult> {
        if self.use_cache {
            if let Some(hit) = self.cache.get_traceroute(self.sim, src, dst) {
                return hit;
            }
        }
        self.traceroute_fresh(src, dst)
    }

    /// Traceroute bypassing the cache. Unlike the RR paths above, this
    /// *intentionally* writes through to the cache even on a
    /// cache-disabled prober: `traceroute_fresh` is the atlas-refresh
    /// primitive, and a forced refresh must update the shared cache or
    /// every subsequent cached read would serve the stale trace it was
    /// called to replace.
    pub fn traceroute_fresh(&self, src: Addr, dst: Addr) -> Option<TraceResult> {
        let flow = (revtr_netsim::hash::mix2(src.0 as u64, dst.0 as u64) & 0xFFFF) as u16;
        for attempt in 0..self.retry.traceroute_attempts.max(1) {
            if attempt > 0 {
                self.charge_retry(attempt);
            }
            self.counters.bump(ProbeKind::Traceroutes);
            if self.fault_lost(None, dst) {
                self.counters.bump(ProbeKind::Lost);
                self.tele_lost();
                self.clock.advance(TRACEROUTE_TIMEOUT_MS, self.sim);
                continue;
            }
            let r = self.sim.traceroute(src, dst, flow);
            match &r {
                Some(t) => {
                    self.counters
                        .add(ProbeKind::TraceroutePkts, t.hops.len() as u64);
                    self.clock.advance(t.rtt_ms, self.sim);
                }
                None => self.clock.advance(TRACEROUTE_TIMEOUT_MS, self.sim),
            }
            self.cache.put_traceroute(self.sim, src, dst, r.clone());
            return r;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    fn sim() -> Sim {
        Sim::build(SimConfig::tiny(), 21)
    }

    #[test]
    fn counters_track_probe_kinds() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        p.ping(vp0, vp1);
        p.rr_ping(vp0, vp1);
        p.spoofed_rr_batch(&[(vp0, vp1), (vp1, vp0)], vp2);
        p.traceroute(vp0, vp1);
        let snap = p.counters().snapshot();
        assert_eq!(snap.ping, 1);
        assert_eq!(snap.rr, 1);
        assert_eq!(snap.spoof_rr, 2);
        assert_eq!(snap.traceroutes, 1);
        assert!(snap.traceroute_pkts >= 2);
        assert_eq!(snap.retries, 0, "no faults, no retries");
        assert_eq!(snap.lost, 0);
    }

    #[test]
    fn cache_avoids_repeat_probes() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let a = p.rr_ping(vp0, vp1);
        let before = p.counters().snapshot();
        let b = p.rr_ping(vp0, vp1);
        let after = p.counters().snapshot();
        assert_eq!(a, b);
        assert_eq!(before.rr, after.rr, "second call must hit the cache");

        // With caching disabled, the probe is re-sent.
        let p2 = p.with_cache_enabled(false);
        p2.rr_ping(vp0, vp1);
        assert_eq!(p.counters().snapshot().rr, after.rr + 1);
    }

    #[test]
    fn cache_disabled_prober_does_not_write_cache() {
        // Regression: a cache-ablation prober used to *write* its results
        // into the shared cache, so the supposedly cache-less run warmed
        // the cache for everyone else and skewed the Table 4 ablation.
        let s = sim();
        let p = Prober::new(&s);
        let ablated = p.with_cache_enabled(false);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        ablated.rr_ping(vp0, vp1);
        ablated.spoofed_rr_batch(&[(vp1, vp2)], vp0);
        // The caching prober must still have to send fresh probes.
        let before = p.counters().snapshot();
        p.rr_ping(vp0, vp1);
        p.spoofed_rr_batch(&[(vp1, vp2)], vp0);
        let d = p.counters().snapshot().since(&before);
        assert_eq!(d.rr, 1, "ablated prober leaked an rr cache entry");
        assert_eq!(d.spoof_rr, 1, "ablated prober leaked a spoofed entry");
    }

    #[test]
    fn batch_charges_one_timeout() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        let t0 = p.clock().now_ms();
        let b = p.spoofed_rr_batch(&[(vp1, vp2), (vp2, vp1)], vp0);
        let dt = p.clock().now_ms() - t0;
        assert_eq!(b.timeouts, 1);
        assert!((dt - SPOOF_BATCH_TIMEOUT_MS).abs() < 1e-9);
        // Empty batch is free.
        let t1 = p.clock().now_ms();
        let b = p.spoofed_rr_batch(&[], vp0);
        assert_eq!(b.timeouts, 0);
        assert_eq!(p.clock().now_ms(), t1);
    }

    #[test]
    fn fully_cached_batch_is_free() {
        // Regression: a batch answered entirely from cache used to charge
        // the full 10 s collection timeout anyway.
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        let pairs = [(vp1, vp2), (vp2, vp1)];
        let first = p.spoofed_rr_batch(&pairs, vp0);
        let t0 = p.clock().now_ms();
        let before = p.counters().snapshot();
        let second = p.spoofed_rr_batch(&pairs, vp0);
        assert_eq!(second.timeouts, 0, "fully cached batch must cost 0");
        assert_eq!(p.clock().now_ms(), t0, "no virtual time may pass");
        assert_eq!(
            p.counters().snapshot().since(&before).spoof_rr,
            0,
            "no probes re-sent"
        );
        assert_eq!(first.replies, second.replies);
    }

    #[test]
    fn unanswered_probe_charges_timeout() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let t0 = p.clock().now_ms();
        assert!(p.ping(vp0, Addr::new(10, 9, 9, 9)).is_none());
        assert!((p.clock().now_ms() - t0 - PROBE_TIMEOUT_MS).abs() < 1e-9);
    }

    #[test]
    fn traceroute_packets_counted_per_hop() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let t = p.traceroute_fresh(vp0, vp1).expect("VPs reachable");
        assert_eq!(p.counters().snapshot().traceroute_pkts, t.hops.len() as u64);
    }

    #[test]
    fn retries_recover_lossy_probes() {
        let mut cfg = SimConfig::tiny();
        cfg.faults.probe_loss = 0.4;
        let s = Sim::build(cfg, 23);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        // Without retries some rr_pings to a responsive VP host are lost…
        let p0 = Prober::new(&s).with_cache_enabled(false);
        let lost_once = (0..40).filter(|_| p0.rr_ping(vp0, vp1).is_none()).count();
        assert!(lost_once > 0, "loss rate 0.4 lost nothing in 40 probes");
        assert!(p0.counters().snapshot().lost > 0);
        // …while a generous budget recovers (virtually) all of them.
        let p6 = p0.with_retry_policy(RetryPolicy::uniform(6));
        let lost_retried = (0..40).filter(|_| p6.rr_ping(vp0, vp1).is_none()).count();
        assert!(
            lost_retried < lost_once,
            "budget 6 ({lost_retried} lost) must beat budget 1 ({lost_once} lost)"
        );
        assert!(p6.counters().snapshot().retries > 0);
    }

    #[test]
    fn outcome_distinguishes_transient_from_unanswered() {
        let mut cfg = SimConfig::tiny();
        cfg.faults.probe_loss = 1.0; // every attempt lost
        let s = Sim::build(cfg, 24);
        let p = Prober::new(&s).with_cache_enabled(false);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        assert_eq!(
            p.rr_ping_outcome(vp0, vp1),
            Err(ProbeLoss::Transient),
            "total loss must be attributed to faults"
        );
        // A genuinely unresponsive destination is persistent even with a
        // fault-free sim and retry budget to spare.
        let s2 = sim();
        let p2 = Prober::new(&s2).with_retry_policy(RetryPolicy::uniform(4));
        let vp = s2.topo().vp_sites[0].host;
        let before = p2.counters().snapshot();
        assert_eq!(
            p2.rr_ping_outcome(vp, Addr::new(10, 9, 9, 9)),
            Err(ProbeLoss::Unanswered)
        );
        let d = p2.counters().snapshot().since(&before);
        assert_eq!(d.rr, 1, "deterministic non-answers are not retried");
        assert_eq!(d.retries, 0);
    }

    #[test]
    fn batch_retry_rounds_charge_per_round() {
        let mut cfg = SimConfig::tiny();
        cfg.faults.probe_loss = 1.0;
        let s = Sim::build(cfg, 25);
        let p = Prober::new(&s).with_retry_policy(RetryPolicy::uniform(3));
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        let t0 = p.clock().now_ms();
        let b = p.spoofed_rr_batch(&[(vp1, vp2)], vp0);
        assert_eq!(b.timeouts, 3, "every round re-collects the lost pair");
        assert!((p.clock().now_ms() - t0 - 3.0 * SPOOF_BATCH_TIMEOUT_MS).abs() < 1e-9);
        assert!(b.replies[0].is_none());
        assert!(b.transient[0], "loss must be attributed as transient");
        let snap = p.counters().snapshot();
        assert_eq!(snap.spoof_rr, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.lost, 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use revtr_netsim::SimConfig;

    #[test]
    fn ts_batches_account_and_charge() {
        let s = Sim::build(SimConfig::tiny(), 22);
        let p = Prober::new(&s);
        let vps = &s.topo().vp_sites;
        let t0 = p.clock().now_ms();
        let probes = vec![(vps[1].host, vps[2].host, vec![vps[2].host])];
        let out = p.spoofed_ts_batch(&probes, vps[0].host);
        assert_eq!(out.len(), 1);
        assert_eq!(p.counters().snapshot().spoof_ts, 1);
        assert!((p.clock().now_ms() - t0 - crate::clock::SPOOF_BATCH_TIMEOUT_MS).abs() < 1e-9);
    }

    #[test]
    fn cache_disabled_prober_shares_counters() {
        let s = Sim::build(SimConfig::tiny(), 22);
        let p = Prober::new(&s);
        let q = p.with_cache_enabled(false);
        let vps = &s.topo().vp_sites;
        p.ping(vps[0].host, vps[1].host);
        q.ping(vps[0].host, vps[1].host);
        assert_eq!(p.counters().snapshot().ping, 2, "counters are shared");
    }

    #[test]
    fn traceroute_cache_respects_virtual_ttl() {
        let s = Sim::build(SimConfig::tiny(), 22);
        let p = Prober::new(&s);
        let vps = &s.topo().vp_sites;
        p.traceroute(vps[0].host, vps[1].host);
        let before = p.counters().snapshot().traceroutes;
        p.traceroute(vps[0].host, vps[1].host);
        assert_eq!(p.counters().snapshot().traceroutes, before, "cache hit");
        s.advance_hours(25.0); // beyond the one-day TTL
        p.traceroute(vps[0].host, vps[1].host);
        assert_eq!(
            p.counters().snapshot().traceroutes,
            before + 1,
            "expired entry must be re-measured"
        );
    }
}
