//! The prober: issue probes against the simulated Internet with accounting,
//! virtual latency, and optional measurement reuse.
//!
//! A [`Prober`] is cheap to clone and thread-safe; campaign code clones one
//! per worker so counters/clock/cache are shared.

use crate::cache::{MeasurementCache, RrKey};
use crate::clock::{Clock, SPOOF_BATCH_TIMEOUT_MS};
use crate::counters::{Counters, ProbeKind};
use revtr_netsim::{Addr, EchoReply, RrReply, Sim, TraceResult, TsReply};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Timeout charged for an unanswered non-spoofed probe (virtual ms).
pub const PROBE_TIMEOUT_MS: f64 = 2_000.0;

/// Timeout charged for a traceroute that never completes (virtual ms).
pub const TRACEROUTE_TIMEOUT_MS: f64 = 5_000.0;

/// Probe issuance facade.
#[derive(Clone)]
pub struct Prober<'s> {
    sim: &'s Sim,
    counters: Arc<Counters>,
    clock: Arc<Clock>,
    cache: Arc<MeasurementCache>,
    use_cache: bool,
    nonce: Arc<AtomicU64>,
}

impl<'s> Prober<'s> {
    /// New prober with fresh shared state and caching enabled.
    pub fn new(sim: &'s Sim) -> Prober<'s> {
        Prober {
            sim,
            counters: Arc::new(Counters::new()),
            clock: Arc::new(Clock::new()),
            cache: Arc::new(MeasurementCache::new()),
            use_cache: true,
            nonce: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Same shared state, with caching toggled (the Table 4 "cache"
    /// ablation knob).
    pub fn with_cache_enabled(&self, enabled: bool) -> Prober<'s> {
        let mut p = self.clone();
        p.use_cache = enabled;
        p
    }

    /// The simulator this prober probes.
    pub fn sim(&self) -> &'s Sim {
        self.sim
    }

    /// Shared probe counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Shared measurement cache.
    pub fn cache(&self) -> &MeasurementCache {
        &self.cache
    }

    fn next_nonce(&self) -> u64 {
        self.nonce.fetch_add(1, Ordering::Relaxed)
    }

    fn charge(&self, reply_rtt: Option<f64>) {
        match reply_rtt {
            Some(rtt) => self.clock.advance(rtt, self.sim),
            None => self.clock.advance(PROBE_TIMEOUT_MS, self.sim),
        }
    }

    // ---- pings ------------------------------------------------------------

    /// Plain ping.
    pub fn ping(&self, src: Addr, dst: Addr) -> Option<EchoReply> {
        self.counters.bump(ProbeKind::Ping);
        let r = self.sim.ping(src, dst);
        self.charge(r.as_ref().map(|x| x.rtt_ms));
        r
    }

    // ---- record route -------------------------------------------------------

    /// Non-spoofed RR ping from `src`, reusing a fresh cached result when
    /// caching is enabled.
    pub fn rr_ping(&self, src: Addr, dst: Addr) -> Option<RrReply> {
        let key = RrKey {
            sender: src,
            claimed: src,
            dst,
        };
        if self.use_cache {
            if let Some(hit) = self.cache.get_rr(self.sim, key) {
                return hit;
            }
        }
        self.counters.bump(ProbeKind::Rr);
        let r = self.sim.rr_ping(src, dst, self.next_nonce());
        self.charge(r.as_ref().map(|x| x.rtt_ms));
        self.cache.put_rr(self.sim, key, r.clone());
        r
    }

    /// RR ping issued for the background RR-atlas (§4.2): identical
    /// semantics, separate accounting (offline budget).
    pub fn atlas_rr_ping(&self, sender: Addr, claimed: Addr, dst: Addr) -> Option<RrReply> {
        self.counters.bump(ProbeKind::AtlasRr);
        let r = self
            .sim
            .rr_ping_from(sender, claimed, dst, self.next_nonce());
        self.charge(r.as_ref().map(|x| x.rtt_ms));
        r
    }

    /// A batch of spoofed RR pings, all claiming source `claimed`, one per
    /// `(vantage point, destination)` pair. The whole batch costs one
    /// 10-second collection timeout of virtual time (§5.2.4), which is what
    /// makes batch count the dominant latency factor (Fig. 5c).
    pub fn spoofed_rr_batch(&self, pairs: &[(Addr, Addr)], claimed: Addr) -> Vec<Option<RrReply>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(pairs.len());
        for &(vp, dst) in pairs {
            let key = RrKey {
                sender: vp,
                claimed,
                dst,
            };
            if self.use_cache {
                if let Some(hit) = self.cache.get_rr(self.sim, key) {
                    out.push(hit);
                    continue;
                }
            }
            self.counters.bump(ProbeKind::SpoofRr);
            let r = self.sim.rr_ping_from(vp, claimed, dst, self.next_nonce());
            self.cache.put_rr(self.sim, key, r.clone());
            out.push(r);
        }
        self.clock.advance(SPOOF_BATCH_TIMEOUT_MS, self.sim);
        out
    }

    // ---- timestamp -------------------------------------------------------------

    /// Non-spoofed TS-prespec ping.
    pub fn ts_ping(&self, src: Addr, dst: Addr, prespec: &[Addr]) -> Option<TsReply> {
        self.counters.bump(ProbeKind::Ts);
        let r = self
            .sim
            .ts_ping_from(src, src, dst, prespec, self.next_nonce());
        self.charge(r.as_ref().map(|x| x.rtt_ms));
        r
    }

    /// A batch of spoofed TS pings (one collection timeout for the batch).
    pub fn spoofed_ts_batch(
        &self,
        probes: &[(Addr, Addr, Vec<Addr>)],
        claimed: Addr,
    ) -> Vec<Option<TsReply>> {
        if probes.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(probes.len());
        for (vp, dst, prespec) in probes {
            self.counters.bump(ProbeKind::SpoofTs);
            out.push(
                self.sim
                    .ts_ping_from(*vp, claimed, *dst, prespec, self.next_nonce()),
            );
        }
        self.clock.advance(SPOOF_BATCH_TIMEOUT_MS, self.sim);
        out
    }

    // ---- traceroute --------------------------------------------------------------

    /// (Paris) traceroute with caching.
    pub fn traceroute(&self, src: Addr, dst: Addr) -> Option<TraceResult> {
        if self.use_cache {
            if let Some(hit) = self.cache.get_traceroute(self.sim, src, dst) {
                return hit;
            }
        }
        let r = self.traceroute_fresh(src, dst);
        self.cache.put_traceroute(self.sim, src, dst, r.clone());
        r
    }

    /// Traceroute bypassing the cache (but still recording into it).
    pub fn traceroute_fresh(&self, src: Addr, dst: Addr) -> Option<TraceResult> {
        let flow = (revtr_netsim::hash::mix2(src.0 as u64, dst.0 as u64) & 0xFFFF) as u16;
        let r = self.sim.traceroute(src, dst, flow);
        self.counters.bump(ProbeKind::Traceroutes);
        match &r {
            Some(t) => {
                self.counters
                    .add(ProbeKind::TraceroutePkts, t.hops.len() as u64);
                self.clock.advance(t.rtt_ms, self.sim);
            }
            None => self.clock.advance(TRACEROUTE_TIMEOUT_MS, self.sim),
        }
        self.cache.put_traceroute(self.sim, src, dst, r.clone());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revtr_netsim::SimConfig;

    fn sim() -> Sim {
        Sim::build(SimConfig::tiny(), 21)
    }

    #[test]
    fn counters_track_probe_kinds() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        p.ping(vp0, vp1);
        p.rr_ping(vp0, vp1);
        p.spoofed_rr_batch(&[(vp0, vp1), (vp1, vp0)], vp2);
        p.traceroute(vp0, vp1);
        let snap = p.counters().snapshot();
        assert_eq!(snap.ping, 1);
        assert_eq!(snap.rr, 1);
        assert_eq!(snap.spoof_rr, 2);
        assert_eq!(snap.traceroutes, 1);
        assert!(snap.traceroute_pkts >= 2);
    }

    #[test]
    fn cache_avoids_repeat_probes() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let a = p.rr_ping(vp0, vp1);
        let before = p.counters().snapshot();
        let b = p.rr_ping(vp0, vp1);
        let after = p.counters().snapshot();
        assert_eq!(a, b);
        assert_eq!(before.rr, after.rr, "second call must hit the cache");

        // With caching disabled, the probe is re-sent.
        let p2 = p.with_cache_enabled(false);
        p2.rr_ping(vp0, vp1);
        assert_eq!(p.counters().snapshot().rr, after.rr + 1);
    }

    #[test]
    fn batch_charges_one_timeout() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let vp2 = s.topo().vp_sites[2].host;
        let t0 = p.clock().now_ms();
        p.spoofed_rr_batch(&[(vp1, vp2), (vp2, vp1)], vp0);
        let dt = p.clock().now_ms() - t0;
        assert!((dt - SPOOF_BATCH_TIMEOUT_MS).abs() < 1e-9);
        // Empty batch is free.
        let t1 = p.clock().now_ms();
        p.spoofed_rr_batch(&[], vp0);
        assert_eq!(p.clock().now_ms(), t1);
    }

    #[test]
    fn unanswered_probe_charges_timeout() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let t0 = p.clock().now_ms();
        assert!(p.ping(vp0, Addr::new(10, 9, 9, 9)).is_none());
        assert!((p.clock().now_ms() - t0 - PROBE_TIMEOUT_MS).abs() < 1e-9);
    }

    #[test]
    fn traceroute_packets_counted_per_hop() {
        let s = sim();
        let p = Prober::new(&s);
        let vp0 = s.topo().vp_sites[0].host;
        let vp1 = s.topo().vp_sites[1].host;
        let t = p.traceroute_fresh(vp0, vp1).expect("VPs reachable");
        assert_eq!(p.counters().snapshot().traceroute_pkts, t.hops.len() as u64);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use revtr_netsim::SimConfig;

    #[test]
    fn ts_batches_account_and_charge() {
        let s = Sim::build(SimConfig::tiny(), 22);
        let p = Prober::new(&s);
        let vps = &s.topo().vp_sites;
        let t0 = p.clock().now_ms();
        let probes = vec![(vps[1].host, vps[2].host, vec![vps[2].host])];
        let out = p.spoofed_ts_batch(&probes, vps[0].host);
        assert_eq!(out.len(), 1);
        assert_eq!(p.counters().snapshot().spoof_ts, 1);
        assert!((p.clock().now_ms() - t0 - crate::clock::SPOOF_BATCH_TIMEOUT_MS).abs() < 1e-9);
    }

    #[test]
    fn cache_disabled_prober_shares_counters() {
        let s = Sim::build(SimConfig::tiny(), 22);
        let p = Prober::new(&s);
        let q = p.with_cache_enabled(false);
        let vps = &s.topo().vp_sites;
        p.ping(vps[0].host, vps[1].host);
        q.ping(vps[0].host, vps[1].host);
        assert_eq!(p.counters().snapshot().ping, 2, "counters are shared");
    }

    #[test]
    fn traceroute_cache_respects_virtual_ttl() {
        let s = Sim::build(SimConfig::tiny(), 22);
        let p = Prober::new(&s);
        let vps = &s.topo().vp_sites;
        p.traceroute(vps[0].host, vps[1].host);
        let before = p.counters().snapshot().traceroutes;
        p.traceroute(vps[0].host, vps[1].host);
        assert_eq!(p.counters().snapshot().traceroutes, before, "cache hit");
        s.advance_hours(25.0); // beyond the one-day TTL
        p.traceroute(vps[0].host, vps[1].host);
        assert_eq!(
            p.counters().snapshot().traceroutes,
            before + 1,
            "expired entry must be re-measured"
        );
    }
}
