//! Campaign-wide Doubletree-style stop sets: the cross-request probe
//! economy layer (ROADMAP item 3).
//!
//! Doubletree (Donnet et al., "Efficient Route Tracing from a Single
//! Source") observes that redundant probing collapses when monitors share
//! two sets: a *backward stop set* of (monitor, interface) pairs whose
//! path tail is already known, and a *forward discovery set* of
//! interfaces already explored toward destinations. This module is the
//! revtr analogue:
//!
//! * the **backward stop set** maps `(revtr source, frontier router)` to
//!   reverse-hop evidence some earlier request already measured at that
//!   router — the full RR observation (hops + send-time
//!   [`RrProvenance`]), so reuse replays against the audit oracle exactly
//!   like a measurement-cache hit. Alongside the evidence it keeps four
//!   cheaper hints: the spoofed-ladder *winner VP* per ingress plan,
//!   per-`(plan, VP)` *probe futility*, per-router *ladder futility*
//!   (all three source-free — slot survival on the VP→router leg does
//!   not depend on the spoofed-for source), and a *direct-RR futility*
//!   marker per `(source, router)`. Together they let a later request
//!   open the ladder at its proven winner, prune predictably useless
//!   VPs, skip exhausted ladders, and skip the predictably unanswered
//!   direct probe;
//! * the **forward discovery set** maps `(atlas source, hop)` to the RR
//!   observation the atlas builder already made for that hop, so
//!   rebuilding or refreshing atlases re-measures each interface once per
//!   campaign instead of once per trace containing it.
//!
//! # Determinism contract
//!
//! Consults read an immutable *published* view. Campaign tasks never
//! write the published view directly: they buffer [`Contribution`]s
//! stamped with `(vtime, request id, seq)`, and the engine merges the
//! buffer at deterministic barriers ([`StopSet::merge_pending`]) by
//! sorting on that stamp and applying first-wins per key. The stamp is a
//! pure function of the task schedule (virtual time, not wall time), so
//! the published view after every barrier — and therefore every consult
//! result — is bitwise identical whatever the worker count or OS
//! interleaving. The metamorphic suite pins this across dispatch workers
//! {1, 4, 16}.
//!
//! Atlas builds run outside the campaign loop (registration happens
//! before requests, refresh on a serial request path), so the forward set
//! is applied immediately rather than buffered.
//!
//! # Accounting contract
//!
//! Stop-set consults never touch the [`MeasurementCache`] and never bump
//! its [`CacheStats`]: economy wins are attributed to the dedicated
//! hit/miss counters here ([`StopSetStats`]), reconciled against cache
//! stats in `eval::throughput`'s counter-reconciliation test.
//!
//! [`MeasurementCache`]: crate::cache::MeasurementCache
//! [`CacheStats`]: crate::cache::CacheStats

use crate::prober::RrProvenance;
use revtr_netsim::{Addr, RrReply};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// One reusable RR observation: the reverse hops it revealed plus the
/// send-time provenance the audit layer replays it under.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredRr {
    /// Reverse hops the observation revealed (post-destination stamps).
    pub hops: Vec<Addr>,
    /// Send-time provenance of the original probe (original nonce and
    /// churn epochs — reuse must replay the send, not the reuse instant).
    pub provenance: RrProvenance,
}

/// Backward stop-set evidence at one `(source, router)` key. Direct and
/// spoofed observations are kept in separate slots so a consult can
/// mirror the engine's own preference order (direct RR first, spoofed
/// ladder second) and stay result-compatible with a from-scratch rr_step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BackwardEntry {
    /// Evidence from a non-spoofed RR ping (source itself was the sender).
    pub direct: Option<StoredRr>,
    /// Evidence from a spoofed RR ping (a VP spoofed as the source).
    pub spoofed: Option<StoredRr>,
}

impl BackwardEntry {
    /// The preferred reusable observation: direct evidence first (it is
    /// what a fresh rr_step would find first), spoofed otherwise. Returns
    /// the observation and whether it came from the spoofed slot.
    pub fn best(&self) -> Option<(&StoredRr, bool)> {
        self.direct
            .as_ref()
            .map(|s| (s, false))
            .or_else(|| self.spoofed.as_ref().map(|s| (s, true)))
    }
}

/// What one task learned, to be folded into the published view at the
/// next merge barrier.
#[derive(Clone, Debug)]
pub enum Note {
    /// Reverse-hop evidence measured at `(src, cur)`; `spoofed` selects
    /// the [`BackwardEntry`] slot.
    Backward {
        /// The revtr source the evidence is valid for.
        src: Addr,
        /// The frontier router the observation was made at.
        cur: Addr,
        /// True if a VP spoofed as `src` (spoofed slot), false for the
        /// source's own direct RR ping.
        spoofed: bool,
        /// The observation.
        stored: StoredRr,
    },
    /// The VP that won the spoofed ladder on an ingress plan — later
    /// requests at any router on the same plan try it first. Keyed on
    /// the plan alone, not `(src, plan)` or the exact router: whether a
    /// VP's record-route slots survive into a plan's network is a
    /// property of the VP→plan leg, so a winner found while serving one
    /// source at one sibling router is the best opening bid everywhere
    /// on the plan (and it is only a hint — the full ladder stays
    /// staged as the fallback, so a wrong guess costs one probe, never
    /// coverage).
    Winner {
        /// Ingress-plan key (see `core::system`'s plan keying: equal
        /// keys imply identical VP queues).
        plan: u64,
        /// The winning vantage point.
        vp: Addr,
    },
    /// One VP's spoofed probe to a router on this plan came back without
    /// a usable record-route observation (unanswered, failed the ingress
    /// check, or its slots were spent before the router) — later ladders
    /// on the same plan *deprioritize* that VP to the back of its queue.
    /// Keyed on `(plan, vp)`: routers sharing a plan share the exact VP
    /// queues, so a VP that could not reach one sibling usably is
    /// walking dead weight at the others. Deprioritizing (never
    /// dropping) is what keeps this coverage-safe: a winning ladder
    /// skips the known-dead prefix, while an exhausting ladder still
    /// reaches every VP — a "futile" sibling VP is occasionally the
    /// only one in range at a particular router, and pruning it
    /// measurably costs coverage. A VP whose reply was usable but
    /// merely not *novel for that request's path* must NOT be marked
    /// futile, and neither must transient (fault-attributed) losses —
    /// those are retried, not proven futile.
    VpFutile {
        /// Ingress-plan key the VP proved futile on.
        plan: u64,
        /// The vantage point whose probe proved futile there.
        vp: Addr,
    },
    /// Direct (non-spoofed) RR from `src` revealed nothing at this exact
    /// router — later requests whose path reaches the same router skip
    /// the direct probe. Futility is keyed per router, not per ingress
    /// plan: a sibling router on the same plan may well be within direct
    /// RR range even when this one is not, and plan-level generalization
    /// measurably costs coverage.
    DirectFutile {
        /// The revtr source.
        src: Addr,
        /// The exact frontier router the direct probe failed at.
        cur: Addr,
    },
    /// One spoofed probe from `vp` either landed (any reply observed) or
    /// vanished. Recorded only by the hardened engine
    /// (`core::EngineConfig::harden`): a sliding window of the last
    /// [`SPOOF_WINDOW`] outcomes per VP feeds the *quarantine* hint — a VP
    /// whose spoofed probes have stopped landing entirely (a spoof-filter
    /// rollout swallowing its packets) is deprioritized in every ladder
    /// queue until one of its probes lands again. Deprioritize-only, like
    /// [`Note::VpFutile`]: quarantine can never cost coverage, only
    /// reorder it.
    VpSpoofOutcome {
        /// The spoofing vantage point.
        vp: Addr,
        /// True if any reply to the spoofed probe was observed.
        landed: bool,
    },
    /// The full spoofed ladder at this exact router was exhausted
    /// without a single *usable* reply (no VP's record-route slots
    /// survived past the router, or it never answered) — later requests
    /// reaching the same router skip the ladder and fall through to the
    /// next technique. Keyed on the router alone: slot survival on the
    /// VP→router leg and the router's RR responsiveness do not depend
    /// on which source the probe was spoofed for. A ladder that got
    /// usable replies which merely revealed nothing *novel for that
    /// request's path* must NOT be marked futile — the same replies can
    /// be evidence for a different request.
    SpoofFutile {
        /// The exact frontier router the ladder was exhausted at.
        cur: Addr,
    },
}

/// A buffered stop-set update, stamped for deterministic merging.
#[derive(Clone, Debug)]
pub struct Contribution {
    /// Virtual time of the contributing task when it learned the fact.
    pub vtime: f64,
    /// Contributing request id (ties on vtime).
    pub req: u64,
    /// Per-request sequence number (ties on request).
    pub seq: u64,
    /// The fact itself.
    pub note: Note,
}

/// Point-in-time stop-set effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StopSetSnapshot {
    /// Backward consults answered with reusable evidence.
    pub backward_hits: u64,
    /// Backward consults with nothing reusable.
    pub backward_misses: u64,
    /// Forward consults answered from the discovery set.
    pub forward_hits: u64,
    /// Forward consults that had to probe.
    pub forward_misses: u64,
    /// Direct RR probes skipped on a futility hint.
    pub direct_skips: u64,
    /// Whole spoofed ladders skipped on a futility hint.
    pub spoof_skips: u64,
    /// Individual VPs deprioritized in ladder queues on a futility hint.
    pub vp_skips: u64,
    /// Ladders started at a remembered winner VP.
    pub winner_hits: u64,
    /// VPs deprioritized in ladder queues because their spoof-quarantine
    /// window went dark (hardened engine only).
    pub quarantine_skips: u64,
}

impl StopSetSnapshot {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(&self, earlier: &StopSetSnapshot) -> StopSetSnapshot {
        StopSetSnapshot {
            backward_hits: self.backward_hits - earlier.backward_hits,
            backward_misses: self.backward_misses - earlier.backward_misses,
            forward_hits: self.forward_hits - earlier.forward_hits,
            forward_misses: self.forward_misses - earlier.forward_misses,
            direct_skips: self.direct_skips - earlier.direct_skips,
            spoof_skips: self.spoof_skips - earlier.spoof_skips,
            vp_skips: self.vp_skips - earlier.vp_skips,
            winner_hits: self.winner_hits - earlier.winner_hits,
            quarantine_skips: self.quarantine_skips - earlier.quarantine_skips,
        }
    }

    /// Total consults of the backward set.
    pub fn backward_lookups(&self) -> u64 {
        self.backward_hits + self.backward_misses
    }

    /// Total consults of the forward discovery set.
    pub fn forward_lookups(&self) -> u64 {
        self.forward_hits + self.forward_misses
    }

    /// Hits of any kind (the "economy wins" the throughput report sums).
    pub fn total_hits(&self) -> u64 {
        self.backward_hits
            + self.forward_hits
            + self.direct_skips
            + self.spoof_skips
            + self.vp_skips
            + self.winner_hits
            + self.quarantine_skips
    }
}

/// Length of the per-VP spoof-outcome sliding window.
pub const SPOOF_WINDOW: u8 = 8;

/// Vanished outcomes (of a full [`SPOOF_WINDOW`]) at which a VP is
/// quarantined. Outcomes are per resolved *pair* — landed if any re-batch
/// got a reply, vanished only after a full stall cycle of fault-attributed
/// losses — so a rate-limited VP (whose pairs land eventually, given
/// retries) almost never records a vanish, while a spoof-filtered VP's
/// filtered pairs *only* vanish. Rollouts are per-(AS, destination),
/// leaving an impaired VP a minority of clean pairs, so demanding *all*
/// outcomes vanish would never trip; 5-of-8 (a 62.5 % vanish rate)
/// catches ~80 % of a 70 %-progress rollout cohort while staying far
/// above anything a healthy or merely rate-limited VP records (genuine
/// unresponsiveness blames the destination and is never recorded, and a
/// rate-limited pair lands within its widened stall cycle ~97 % of the
/// time).
pub const QUARANTINE_MIN_VANISH: u8 = 5;

/// Sliding window of one VP's recent spoofed-probe outcomes (bit = landed,
/// newest in the low bit; shifts drop outcomes older than
/// [`SPOOF_WINDOW`]).
#[derive(Clone, Copy, Debug, Default)]
struct SpoofWindow {
    bits: u8,
    len: u8,
}

impl SpoofWindow {
    fn push(&mut self, landed: bool) {
        self.bits = (self.bits << 1) | u8::from(landed);
        self.len = (self.len + 1).min(SPOOF_WINDOW);
    }

    fn quarantined(self) -> bool {
        // `bits` is u8-wide, so shifts already discard outcomes older
        // than the window; its ones are exactly the landings kept.
        self.len >= SPOOF_WINDOW
            && SPOOF_WINDOW - self.bits.count_ones() as u8 >= QUARANTINE_MIN_VANISH
    }
}

#[derive(Debug, Default)]
struct Published {
    backward: HashMap<(Addr, Addr), BackwardEntry>,
    winners: HashMap<u64, Addr>,
    direct_futile: HashSet<(Addr, Addr)>,
    spoof_futile: HashSet<Addr>,
    vp_futile: HashMap<u64, HashSet<Addr>>,
    forward: HashMap<(Addr, Addr), Option<RrReply>>,
    spoof_windows: HashMap<Addr, SpoofWindow>,
}

/// The campaign-wide stop-set layer. One instance per
/// `core::system::RevtrSystem`; cheap to share via `Arc`.
#[derive(Debug, Default)]
pub struct StopSet {
    published: RwLock<Published>,
    pending: Mutex<Vec<Contribution>>,
    backward_hits: AtomicU64,
    backward_misses: AtomicU64,
    forward_hits: AtomicU64,
    forward_misses: AtomicU64,
    direct_skips: AtomicU64,
    spoof_skips: AtomicU64,
    vp_skips: AtomicU64,
    winner_hits: AtomicU64,
    quarantine_skips: AtomicU64,
}

impl StopSet {
    /// Fresh, empty stop sets.
    pub fn new() -> StopSet {
        StopSet::default()
    }

    // ---- consults (published view only) -----------------------------------

    /// Backward consult: reusable evidence at `(src, cur)`, preferring the
    /// direct slot. Counts a hit or miss.
    pub fn backward(&self, src: Addr, cur: Addr) -> Option<(StoredRr, bool)> {
        let g = self.published.read().expect("stopset lock poisoned");
        match g.backward.get(&(src, cur)).and_then(|e| e.best()) {
            Some((s, spoofed)) => {
                self.backward_hits.fetch_add(1, Ordering::Relaxed);
                Some((s.clone(), spoofed))
            }
            None => {
                self.backward_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The remembered ladder-winner VP for an ingress plan, if any.
    /// Counts a winner hit when present (the consult is free either way —
    /// this is a hint, not a lookup that replaces a probe by itself).
    pub fn winner(&self, plan: u64) -> Option<Addr> {
        let g = self.published.read().expect("stopset lock poisoned");
        let w = g.winners.get(&plan).copied();
        if w.is_some() {
            self.winner_hits.fetch_add(1, Ordering::Relaxed);
        }
        w
    }

    /// Whether direct RR from `src` is known futile at this exact router.
    /// Counts a skip when true.
    pub fn direct_futile(&self, src: Addr, cur: Addr) -> bool {
        let g = self.published.read().expect("stopset lock poisoned");
        let f = g.direct_futile.contains(&(src, cur));
        if f {
            self.direct_skips.fetch_add(1, Ordering::Relaxed);
        }
        f
    }

    /// Whether the spoofed ladder at `cur` is known exhausted without a
    /// usable reply (for any source). Counts a skip when true.
    pub fn spoof_futile(&self, cur: Addr) -> bool {
        let g = self.published.read().expect("stopset lock poisoned");
        let f = g.spoof_futile.contains(&cur);
        if f {
            self.spoof_skips.fetch_add(1, Ordering::Relaxed);
        }
        f
    }

    /// The VPs known futile on an ingress plan (empty set when none).
    /// Does not count anything by itself: a futile VP only matters when
    /// a ladder actually deprioritizes it, which the caller reports via
    /// [`StopSet::note_vp_skips`].
    pub fn futile_vps(&self, plan: u64) -> HashSet<Addr> {
        let g = self.published.read().expect("stopset lock poisoned");
        g.vp_futile.get(&plan).cloned().unwrap_or_default()
    }

    /// Record `n` VPs actually deprioritized in a ladder queue on
    /// futility hints (called by the step driver after reordering its
    /// queues).
    pub fn note_vp_skips(&self, n: u64) {
        if n > 0 {
            self.vp_skips.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The VPs currently quarantined: their spoof-outcome window is full
    /// and a majority of the pairs in it vanished (a spoof filter is
    /// swallowing them). Empty unless the hardened engine has been
    /// feeding [`Note::VpSpoofOutcome`]s. Does not count anything by
    /// itself — the caller reports actual deprioritizations via
    /// [`StopSet::note_quarantine_skips`].
    pub fn quarantined_vps(&self) -> HashSet<Addr> {
        let g = self.published.read().expect("stopset lock poisoned");
        g.spoof_windows
            .iter()
            .filter(|(_, w)| w.quarantined())
            .map(|(&vp, _)| vp)
            .collect()
    }

    /// Record `n` VPs actually deprioritized on a quarantine hint.
    pub fn note_quarantine_skips(&self, n: u64) {
        if n > 0 {
            self.quarantine_skips.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Forward-discovery consult: the RR observation already made for
    /// `(source, hop)`, if any (`Some(None)` = known unanswered). Counts a
    /// hit or miss.
    pub fn forward(&self, source: Addr, hop: Addr) -> Option<Option<RrReply>> {
        let g = self.published.read().expect("stopset lock poisoned");
        match g.forward.get(&(source, hop)) {
            Some(r) => {
                self.forward_hits.fetch_add(1, Ordering::Relaxed);
                Some(r.clone())
            }
            None => {
                self.forward_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    // ---- updates ----------------------------------------------------------

    /// Buffer a task contribution; it becomes visible at the next
    /// [`StopSet::merge_pending`] barrier.
    pub fn contribute(&self, c: Contribution) {
        self.pending.lock().expect("stopset lock poisoned").push(c);
    }

    /// Merge every buffered contribution into the published view, ordered
    /// by `(vtime, request id, seq)` with first-wins per key. Called by
    /// the engine at wave barriers (and after every serial step), never
    /// concurrently with task execution.
    pub fn merge_pending(&self) {
        let mut pending = {
            let mut g = self.pending.lock().expect("stopset lock poisoned");
            std::mem::take(&mut *g)
        };
        if pending.is_empty() {
            return;
        }
        pending.sort_by(|a, b| {
            a.vtime
                .total_cmp(&b.vtime)
                .then(a.req.cmp(&b.req))
                .then(a.seq.cmp(&b.seq))
        });
        let mut g = self.published.write().expect("stopset lock poisoned");
        for c in pending {
            match c.note {
                Note::Backward {
                    src,
                    cur,
                    spoofed,
                    stored,
                } => {
                    let e = g.backward.entry((src, cur)).or_default();
                    let slot = if spoofed {
                        &mut e.spoofed
                    } else {
                        &mut e.direct
                    };
                    if slot.is_none() {
                        *slot = Some(stored);
                    }
                }
                Note::Winner { plan, vp } => {
                    g.winners.entry(plan).or_insert(vp);
                }
                Note::DirectFutile { src, cur } => {
                    g.direct_futile.insert((src, cur));
                }
                Note::SpoofFutile { cur } => {
                    g.spoof_futile.insert(cur);
                }
                Note::VpFutile { plan, vp } => {
                    g.vp_futile.entry(plan).or_default().insert(vp);
                }
                Note::VpSpoofOutcome { vp, landed } => {
                    g.spoof_windows.entry(vp).or_default().push(landed);
                }
            }
        }
    }

    /// Record a forward-discovery observation immediately (atlas builds
    /// run outside the campaign loop, so no buffering is needed).
    /// First-wins: an existing observation is kept.
    pub fn forward_insert(&self, source: Addr, hop: Addr, reply: Option<RrReply>) {
        let mut g = self.published.write().expect("stopset lock poisoned");
        g.forward.entry((source, hop)).or_insert(reply);
    }

    /// Drop every forward-discovery observation for `source` (atlas
    /// refresh: a forced rebuild must re-measure, not replay staleness).
    pub fn forward_clear_source(&self, source: Addr) {
        let mut g = self.published.write().expect("stopset lock poisoned");
        g.forward.retain(|&(s, _), _| s != source);
    }

    // ---- introspection ----------------------------------------------------

    /// Effectiveness counters so far.
    pub fn stats(&self) -> StopSetSnapshot {
        StopSetSnapshot {
            backward_hits: self.backward_hits.load(Ordering::Relaxed),
            backward_misses: self.backward_misses.load(Ordering::Relaxed),
            forward_hits: self.forward_hits.load(Ordering::Relaxed),
            forward_misses: self.forward_misses.load(Ordering::Relaxed),
            direct_skips: self.direct_skips.load(Ordering::Relaxed),
            spoof_skips: self.spoof_skips.load(Ordering::Relaxed),
            vp_skips: self.vp_skips.load(Ordering::Relaxed),
            winner_hits: self.winner_hits.load(Ordering::Relaxed),
            quarantine_skips: self.quarantine_skips.load(Ordering::Relaxed),
        }
    }

    /// Published backward entries (for reports/tests).
    pub fn backward_len(&self) -> usize {
        self.published
            .read()
            .expect("stopset lock poisoned")
            .backward
            .len()
    }

    /// Published forward-discovery entries (for reports/tests).
    pub fn forward_len(&self) -> usize {
        self.published
            .read()
            .expect("stopset lock poisoned")
            .forward
            .len()
    }

    /// Buffered, not-yet-merged contributions (0 outside a wave).
    pub fn pending_len(&self) -> usize {
        self.pending.lock().expect("stopset lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov(sender: Addr, claimed: Addr, dst: Addr, nonce: u64) -> RrProvenance {
        RrProvenance {
            sender,
            claimed,
            dst,
            nonce,
            fwd_epoch: None,
            rep_epoch: None,
            from_cache: false,
        }
    }

    fn backward_note(src: Addr, cur: Addr, spoofed: bool, hop: Addr, nonce: u64) -> Note {
        Note::Backward {
            src,
            cur,
            spoofed,
            stored: StoredRr {
                hops: vec![hop],
                provenance: prov(src, src, cur, nonce),
            },
        }
    }

    #[test]
    fn consults_are_invisible_until_merge() {
        let s = StopSet::new();
        let (src, cur, hop) = (Addr(1), Addr(2), Addr(3));
        s.contribute(Contribution {
            vtime: 10.0,
            req: 0,
            seq: 0,
            note: backward_note(src, cur, false, hop, 7),
        });
        assert!(s.backward(src, cur).is_none(), "pending must be invisible");
        assert_eq!(s.pending_len(), 1);
        s.merge_pending();
        assert_eq!(s.pending_len(), 0);
        let (stored, spoofed) = s.backward(src, cur).expect("merged entry visible");
        assert_eq!(stored.hops, vec![hop]);
        assert!(!spoofed);
        let st = s.stats();
        assert_eq!(st.backward_hits, 1);
        assert_eq!(st.backward_misses, 1);
    }

    #[test]
    fn merge_order_is_stamp_order_not_insertion_order() {
        // Two tasks contribute conflicting evidence for the same key; the
        // lower (vtime, req, seq) stamp must win regardless of the order
        // the contributions were buffered in (i.e. of OS scheduling).
        let (src, cur) = (Addr(1), Addr(2));
        let early = Contribution {
            vtime: 5.0,
            req: 9,
            seq: 3,
            note: backward_note(src, cur, false, Addr(100), 1),
        };
        let late = Contribution {
            vtime: 5.0,
            req: 10,
            seq: 0,
            note: backward_note(src, cur, false, Addr(200), 2),
        };
        for order in [[&early, &late], [&late, &early]] {
            let s = StopSet::new();
            for c in order {
                s.contribute((*c).clone());
            }
            s.merge_pending();
            let (stored, _) = s.backward(src, cur).expect("entry");
            assert_eq!(
                stored.hops,
                vec![Addr(100)],
                "first-by-stamp must win in every insertion order"
            );
        }
    }

    #[test]
    fn direct_and_spoofed_slots_are_independent_and_direct_preferred() {
        let s = StopSet::new();
        let (src, cur) = (Addr(1), Addr(2));
        s.contribute(Contribution {
            vtime: 1.0,
            req: 0,
            seq: 0,
            note: backward_note(src, cur, true, Addr(50), 1),
        });
        s.merge_pending();
        let (_, spoofed) = s.backward(src, cur).expect("spoofed slot");
        assert!(spoofed);
        // A later direct observation fills the empty direct slot and is
        // then preferred, without evicting the spoofed one.
        s.contribute(Contribution {
            vtime: 2.0,
            req: 1,
            seq: 0,
            note: backward_note(src, cur, false, Addr(60), 2),
        });
        s.merge_pending();
        let (stored, spoofed) = s.backward(src, cur).expect("direct slot");
        assert!(!spoofed, "direct evidence preferred once present");
        assert_eq!(stored.hops, vec![Addr(60)]);
    }

    #[test]
    fn winner_and_futility_hints() {
        let s = StopSet::new();
        let src = Addr(1);
        let cur = Addr(40);
        assert!(s.winner(4).is_none());
        assert!(!s.direct_futile(src, cur));
        assert!(!s.spoof_futile(cur));
        s.contribute(Contribution {
            vtime: 1.0,
            req: 0,
            seq: 0,
            note: Note::Winner {
                plan: 4,
                vp: Addr(77),
            },
        });
        s.contribute(Contribution {
            vtime: 1.0,
            req: 0,
            seq: 1,
            note: Note::DirectFutile { src, cur },
        });
        s.contribute(Contribution {
            vtime: 1.0,
            req: 0,
            seq: 2,
            note: Note::SpoofFutile { cur },
        });
        // A competing later winner must not replace the first.
        s.contribute(Contribution {
            vtime: 2.0,
            req: 1,
            seq: 0,
            note: Note::Winner {
                plan: 4,
                vp: Addr(88),
            },
        });
        s.merge_pending();
        assert_eq!(s.winner(4), Some(Addr(77)));
        assert!(s.direct_futile(src, cur));
        assert!(s.spoof_futile(cur), "router-keyed futility is source-free");
        assert!(
            !s.direct_futile(Addr(2), cur),
            "direct futility stays per-source"
        );
        let st = s.stats();
        assert_eq!(st.winner_hits, 1);
        assert_eq!(st.direct_skips, 1);
        assert_eq!(st.spoof_skips, 1);
    }

    #[test]
    fn vp_futility_accumulates_per_plan_and_counts_only_real_prunes() {
        let s = StopSet::new();
        let (plan, other) = (40u64, 41u64);
        assert!(s.futile_vps(plan).is_empty());
        for (seq, vp) in [Addr(70), Addr(71)].into_iter().enumerate() {
            s.contribute(Contribution {
                vtime: 1.0,
                req: 0,
                seq: seq as u64,
                note: Note::VpFutile { plan, vp },
            });
        }
        s.merge_pending();
        let f = s.futile_vps(plan);
        assert_eq!(f.len(), 2, "futile VPs accumulate under one plan");
        assert!(f.contains(&Addr(70)) && f.contains(&Addr(71)));
        assert!(
            s.futile_vps(other).is_empty(),
            "futility stays per-plan, not global"
        );
        // Consults alone count nothing; only reported prunes do.
        assert_eq!(s.stats().vp_skips, 0);
        s.note_vp_skips(2);
        s.note_vp_skips(0);
        assert_eq!(s.stats().vp_skips, 2);
        assert_eq!(s.stats().total_hits(), 2);
    }

    #[test]
    fn forward_set_first_wins_and_clears_per_source() {
        let s = StopSet::new();
        let (a, b, hop) = (Addr(1), Addr(2), Addr(9));
        assert!(s.forward(a, hop).is_none());
        s.forward_insert(a, hop, None);
        s.forward_insert(b, hop, None);
        s.forward_insert(a, hop, None); // duplicate: kept, not re-counted
        assert_eq!(s.forward_len(), 2);
        assert_eq!(s.forward(a, hop), Some(None), "known-unanswered is a hit");
        s.forward_clear_source(a);
        assert!(s.forward(a, hop).is_none(), "cleared source re-measures");
        assert_eq!(s.forward(b, hop), Some(None), "other sources untouched");
        let st = s.stats();
        assert_eq!(st.forward_hits, 2);
        assert_eq!(st.forward_misses, 2);
    }

    #[test]
    fn snapshot_diffs() {
        let s = StopSet::new();
        s.forward_insert(Addr(1), Addr(2), None);
        s.forward(Addr(1), Addr(2));
        let a = s.stats();
        s.forward(Addr(1), Addr(2));
        s.forward(Addr(1), Addr(3));
        let d = s.stats().since(&a);
        assert_eq!(d.forward_hits, 1);
        assert_eq!(d.forward_misses, 1);
        assert_eq!(d.forward_lookups(), 2);
        assert_eq!(d.total_hits(), 1);
    }
}
