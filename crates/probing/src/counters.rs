//! Probe accounting, in the categories of the paper's Table 4.
//!
//! Counters are atomic so campaigns can run across threads; snapshots and
//! diffs make per-measurement attribution trivial. Each counter sits on
//! its own cache line ([`CachePadded`]): eight adjacent `AtomicU64`s would
//! otherwise false-share, turning independent per-category increments
//! from parallel workers into a single contended line.
//!
//! Besides the global totals, every increment is mirrored into a
//! *per-thread* shadow ([`Counters::thread_snapshot`]). A measurement runs
//! synchronously on one thread, so diffing the thread shadow around it
//! attributes exactly its own probes — diffing the global totals would
//! fold in whatever concurrent workers sent during the same window,
//! making per-request probe counts depend on the worker count.

use revtr_netsim::CachePadded;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The probe categories tracked (Table 4 plus infrastructure kinds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Plain pings (not in Table 4, tracked for completeness).
    Ping,
    /// Non-spoofed RR pings.
    Rr,
    /// Spoofed RR pings.
    SpoofRr,
    /// Non-spoofed TS pings.
    Ts,
    /// Spoofed TS pings.
    SpoofTs,
    /// Traceroute packets (one per TTL probe).
    TraceroutePkts,
    /// Whole traceroutes.
    Traceroutes,
    /// RR pings issued for the background RR-atlas (§4.2), kept separate so
    /// online vs offline overhead can be reported (paper: 1M of 127M).
    AtlasRr,
    /// Retry attempts (meta-counter: the probe itself is also counted in
    /// its own kind; this tracks how many sends were re-sends).
    Retries,
    /// Probes lost to injected faults (meta-counter: transient loss, ICMP
    /// rate limiting, or spoof-filter flaps — not genuine unresponsiveness).
    Lost,
}

const N_KINDS: usize = 10;

impl ProbeKind {
    fn index(self) -> usize {
        match self {
            ProbeKind::Ping => 0,
            ProbeKind::Rr => 1,
            ProbeKind::SpoofRr => 2,
            ProbeKind::Ts => 3,
            ProbeKind::SpoofTs => 4,
            ProbeKind::TraceroutePkts => 5,
            ProbeKind::Traceroutes => 6,
            ProbeKind::AtlasRr => 7,
            ProbeKind::Retries => 8,
            ProbeKind::Lost => 9,
        }
    }
}

thread_local! {
    /// This thread's contribution per `Counters` instance (keyed by its
    /// unique id).
    static SHADOW: RefCell<HashMap<u64, [u64; N_KINDS]>> = RefCell::new(HashMap::new());
}

/// Unique-id source for `Counters` instances (ids are never reused, so a
/// stale shadow entry can't alias a new instance).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Live atomic probe counters.
#[derive(Debug)]
pub struct Counters {
    id: u64,
    totals: [CachePadded<AtomicU64>; N_KINDS],
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Plain pings.
    pub ping: u64,
    /// Non-spoofed RR pings.
    pub rr: u64,
    /// Spoofed RR pings.
    pub spoof_rr: u64,
    /// Non-spoofed TS pings.
    pub ts: u64,
    /// Spoofed TS pings.
    pub spoof_ts: u64,
    /// Traceroute packets.
    pub traceroute_pkts: u64,
    /// Whole traceroutes.
    pub traceroutes: u64,
    /// Background RR-atlas pings.
    pub atlas_rr: u64,
    /// Retry attempts (meta-counter; each retried send is also counted in
    /// its own kind above).
    pub retries: u64,
    /// Fault-attributed losses (meta-counter; see [`ProbeKind::Lost`]).
    pub lost: u64,
}

impl Snapshot {
    fn to_array(self) -> [u64; N_KINDS] {
        [
            self.ping,
            self.rr,
            self.spoof_rr,
            self.ts,
            self.spoof_ts,
            self.traceroute_pkts,
            self.traceroutes,
            self.atlas_rr,
            self.retries,
            self.lost,
        ]
    }

    fn from_array(v: &[u64; N_KINDS]) -> Snapshot {
        Snapshot {
            ping: v[0],
            rr: v[1],
            spoof_rr: v[2],
            ts: v[3],
            spoof_ts: v[4],
            traceroute_pkts: v[5],
            traceroutes: v[6],
            atlas_rr: v[7],
            retries: v[8],
            lost: v[9],
        }
    }

    /// Table 4's "Total": option-carrying probes (RR + Spoof RR + TS +
    /// Spoof TS), excluding traceroutes and plain pings, as the paper does.
    pub fn option_probes(&self) -> u64 {
        self.rr + self.spoof_rr + self.ts + self.spoof_ts
    }

    /// All packets of any kind. Retries are already folded into their own
    /// kind's count and `lost` marks packets counted elsewhere, so the
    /// meta-counters are deliberately excluded here.
    pub fn all_packets(&self) -> u64 {
        self.option_probes() + self.ping + self.traceroute_pkts + self.atlas_rr
    }

    /// Every measurement *probe* the campaign issued: option-carrying
    /// probes plus atlas RR pings, plain pings, and whole traceroutes
    /// (probe count, not per-TTL packets). This is the numerator of the
    /// probes-per-revtr economy metric — atlas probing is part of a
    /// campaign's probe budget (in the deployed system it dominates it),
    /// so an economy layer that deduplicates atlas refresh must see its
    /// savings counted here.
    pub fn measurement_probes(&self) -> u64 {
        self.option_probes() + self.atlas_rr + self.ping + self.traceroutes
    }

    /// The probe mix as sorted `(kind, count)` pairs — the Table-4 style
    /// breakdown the perf sentinel records in `BENCH_*.json`. Only real
    /// packet kinds appear; the retry/loss meta-counters are reported
    /// separately.
    pub fn by_kind(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("atlas_rr", self.atlas_rr),
            ("ping", self.ping),
            ("rr", self.rr),
            ("spoof_rr", self.spoof_rr),
            ("spoof_ts", self.spoof_ts),
            ("traceroute_pkts", self.traceroute_pkts),
            ("traceroutes", self.traceroutes),
            ("ts", self.ts),
        ]
    }

    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            ping: self.ping - earlier.ping,
            rr: self.rr - earlier.rr,
            spoof_rr: self.spoof_rr - earlier.spoof_rr,
            ts: self.ts - earlier.ts,
            spoof_ts: self.spoof_ts - earlier.spoof_ts,
            traceroute_pkts: self.traceroute_pkts - earlier.traceroute_pkts,
            traceroutes: self.traceroutes - earlier.traceroutes,
            atlas_rr: self.atlas_rr - earlier.atlas_rr,
            retries: self.retries - earlier.retries,
            lost: self.lost - earlier.lost,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Snapshot) -> Snapshot {
        Snapshot {
            ping: self.ping + other.ping,
            rr: self.rr + other.rr,
            spoof_rr: self.spoof_rr + other.spoof_rr,
            ts: self.ts + other.ts,
            spoof_ts: self.spoof_ts + other.spoof_ts,
            traceroute_pkts: self.traceroute_pkts + other.traceroute_pkts,
            traceroutes: self.traceroutes + other.traceroutes,
            atlas_rr: self.atlas_rr + other.atlas_rr,
            retries: self.retries + other.retries,
            lost: self.lost + other.lost,
        }
    }
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Counters {
        Counters {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            totals: Default::default(),
        }
    }

    /// Copy current global values (all threads).
    pub fn snapshot(&self) -> Snapshot {
        let mut v = [0u64; N_KINDS];
        for (slot, total) in v.iter_mut().zip(&self.totals) {
            *slot = total.load(Ordering::Relaxed);
        }
        Snapshot::from_array(&v)
    }

    /// Copy the calling thread's contribution only. Diffing this around a
    /// measurement attributes exactly the probes that measurement sent,
    /// regardless of what other workers do concurrently.
    pub fn thread_snapshot(&self) -> Snapshot {
        SHADOW.with(|s| {
            s.borrow()
                .get(&self.id)
                .map(Snapshot::from_array)
                .unwrap_or_default()
        })
    }

    /// Replace the calling thread's shadow with `snap` and return the
    /// previous shadow.
    ///
    /// Counterpart of `Clock::swap_thread_ms` for the event-driven
    /// engine: the loop swaps each control block's private snapshot in
    /// before stepping it and back out after, so [`thread_snapshot`]
    /// diffs inside the measurement attribute exactly that measurement's
    /// probes even though many measurements share one OS thread.
    ///
    /// [`thread_snapshot`]: Counters::thread_snapshot
    pub fn swap_thread_snapshot(&self, snap: Snapshot) -> Snapshot {
        SHADOW.with(|s| {
            Snapshot::from_array(&std::mem::replace(
                s.borrow_mut().entry(self.id).or_default(),
                snap.to_array(),
            ))
        })
    }

    /// Increment a counter by one.
    pub(crate) fn bump(&self, kind: ProbeKind) {
        self.add(kind, 1);
    }

    /// Increment a counter by `n`.
    pub(crate) fn add(&self, kind: ProbeKind, n: u64) {
        let i = kind.index();
        self.totals[i].fetch_add(n, Ordering::Relaxed);
        SHADOW.with(|s| {
            s.borrow_mut().entry(self.id).or_default()[i] += n;
        });
    }
}

impl Default for Counters {
    fn default() -> Counters {
        Counters::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_sum() {
        let c = Counters::new();
        c.bump(ProbeKind::Rr);
        c.bump(ProbeKind::Rr);
        c.bump(ProbeKind::SpoofRr);
        let a = c.snapshot();
        c.add(ProbeKind::Ts, 5);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.rr, 0);
        assert_eq!(d.ts, 5);
        assert_eq!(b.option_probes(), 2 + 1 + 5);
        let s = a.plus(&d);
        assert_eq!(s, b);
    }

    #[test]
    fn all_packets_counts_everything() {
        let c = Counters::new();
        c.add(ProbeKind::Ping, 2);
        c.add(ProbeKind::TraceroutePkts, 7);
        c.add(ProbeKind::AtlasRr, 3);
        c.add(ProbeKind::SpoofTs, 1);
        assert_eq!(c.snapshot().all_packets(), 2 + 7 + 3 + 1);
    }

    #[test]
    fn thread_snapshot_attributes_per_thread() {
        let c = Counters::new();
        c.add(ProbeKind::Rr, 3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let before = c.thread_snapshot();
                    assert_eq!(before, Snapshot::default(), "fresh thread starts at zero");
                    c.add(ProbeKind::SpoofRr, 2);
                    let mine = c.thread_snapshot().since(&before);
                    assert_eq!(mine.spoof_rr, 2);
                    assert_eq!(mine.rr, 0, "other threads' rr not attributed here");
                });
            }
        });
        // Globals see everything.
        let g = c.snapshot();
        assert_eq!(g.rr, 3);
        assert_eq!(g.spoof_rr, 8);
        // This thread only its own.
        assert_eq!(c.thread_snapshot().rr, 3);
        assert_eq!(c.thread_snapshot().spoof_rr, 0);
    }

    #[test]
    fn swap_thread_snapshot_multiplexes_shadows() {
        let c = Counters::new();
        c.add(ProbeKind::Rr, 2); // task A
        let a = c.swap_thread_snapshot(Snapshot::default()); // to task B
        assert_eq!(a.rr, 2);
        assert_eq!(c.thread_snapshot(), Snapshot::default());
        c.add(ProbeKind::SpoofRr, 5); // task B
        let b = c.swap_thread_snapshot(a); // back to task A
        assert_eq!(b.spoof_rr, 5);
        assert_eq!(b.rr, 0);
        c.bump(ProbeKind::Rr); // task A again
        assert_eq!(c.thread_snapshot().rr, 3);
        assert_eq!(c.thread_snapshot().spoof_rr, 0);
        // Globals unaffected by shadow bookkeeping.
        assert_eq!(c.snapshot().rr, 3);
        assert_eq!(c.snapshot().spoof_rr, 5);
    }

    #[test]
    fn instances_do_not_share_shadows() {
        let a = Counters::new();
        let b = Counters::new();
        a.bump(ProbeKind::Ping);
        assert_eq!(b.thread_snapshot().ping, 0);
        assert_eq!(a.thread_snapshot().ping, 1);
    }
}
