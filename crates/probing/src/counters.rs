//! Probe accounting, in the categories of the paper's Table 4.
//!
//! Counters are atomic so campaigns can run across threads; snapshots and
//! diffs make per-measurement attribution trivial.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic probe counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Plain pings (not in Table 4, tracked for completeness).
    pub ping: AtomicU64,
    /// Non-spoofed RR pings.
    pub rr: AtomicU64,
    /// Spoofed RR pings.
    pub spoof_rr: AtomicU64,
    /// Non-spoofed TS pings.
    pub ts: AtomicU64,
    /// Spoofed TS pings.
    pub spoof_ts: AtomicU64,
    /// Traceroute packets (one per TTL probe).
    pub traceroute_pkts: AtomicU64,
    /// Whole traceroutes.
    pub traceroutes: AtomicU64,
    /// RR pings issued for the background RR-atlas (§4.2), kept separate so
    /// online vs offline overhead can be reported (paper: 1M of 127M).
    pub atlas_rr: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Plain pings.
    pub ping: u64,
    /// Non-spoofed RR pings.
    pub rr: u64,
    /// Spoofed RR pings.
    pub spoof_rr: u64,
    /// Non-spoofed TS pings.
    pub ts: u64,
    /// Spoofed TS pings.
    pub spoof_ts: u64,
    /// Traceroute packets.
    pub traceroute_pkts: u64,
    /// Whole traceroutes.
    pub traceroutes: u64,
    /// Background RR-atlas pings.
    pub atlas_rr: u64,
}

impl Snapshot {
    /// Table 4's "Total": option-carrying probes (RR + Spoof RR + TS +
    /// Spoof TS), excluding traceroutes and plain pings, as the paper does.
    pub fn option_probes(&self) -> u64 {
        self.rr + self.spoof_rr + self.ts + self.spoof_ts
    }

    /// All packets of any kind.
    pub fn all_packets(&self) -> u64 {
        self.option_probes() + self.ping + self.traceroute_pkts + self.atlas_rr
    }

    /// Component-wise difference (`self` must be the later snapshot).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            ping: self.ping - earlier.ping,
            rr: self.rr - earlier.rr,
            spoof_rr: self.spoof_rr - earlier.spoof_rr,
            ts: self.ts - earlier.ts,
            spoof_ts: self.spoof_ts - earlier.spoof_ts,
            traceroute_pkts: self.traceroute_pkts - earlier.traceroute_pkts,
            traceroutes: self.traceroutes - earlier.traceroutes,
            atlas_rr: self.atlas_rr - earlier.atlas_rr,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Snapshot) -> Snapshot {
        Snapshot {
            ping: self.ping + other.ping,
            rr: self.rr + other.rr,
            spoof_rr: self.spoof_rr + other.spoof_rr,
            ts: self.ts + other.ts,
            spoof_ts: self.spoof_ts + other.spoof_ts,
            traceroute_pkts: self.traceroute_pkts + other.traceroute_pkts,
            traceroutes: self.traceroutes + other.traceroutes,
            atlas_rr: self.atlas_rr + other.atlas_rr,
        }
    }
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Copy current values.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            ping: self.ping.load(Ordering::Relaxed),
            rr: self.rr.load(Ordering::Relaxed),
            spoof_rr: self.spoof_rr.load(Ordering::Relaxed),
            ts: self.ts.load(Ordering::Relaxed),
            spoof_ts: self.spoof_ts.load(Ordering::Relaxed),
            traceroute_pkts: self.traceroute_pkts.load(Ordering::Relaxed),
            traceroutes: self.traceroutes.load(Ordering::Relaxed),
            atlas_rr: self.atlas_rr.load(Ordering::Relaxed),
        }
    }

    /// Increment a counter by one.
    pub(crate) fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    pub(crate) fn add(&self, c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_sum() {
        let c = Counters::new();
        c.bump(&c.rr);
        c.bump(&c.rr);
        c.bump(&c.spoof_rr);
        let a = c.snapshot();
        c.add(&c.ts, 5);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.rr, 0);
        assert_eq!(d.ts, 5);
        assert_eq!(b.option_probes(), 2 + 1 + 5);
        let s = a.plus(&d);
        assert_eq!(s, b);
    }

    #[test]
    fn all_packets_counts_everything() {
        let c = Counters::new();
        c.add(&c.ping, 2);
        c.add(&c.traceroute_pkts, 7);
        c.add(&c.atlas_rr, 3);
        c.add(&c.spoof_ts, 1);
        assert_eq!(c.snapshot().all_packets(), 2 + 7 + 3 + 1);
    }
}
