//! # revtr-probing — measurement primitives over the simulated Internet
//!
//! This crate is the measurement substrate of the revtr reproduction: it
//! wraps [`revtr_netsim`]'s probe engine with
//!
//! * **accounting** in the paper's Table 4 categories (RR / spoofed RR /
//!   TS / spoofed TS, plus traceroutes and the background RR-atlas budget),
//! * a **virtual clock** charging realistic latency: per-probe RTTs,
//!   per-batch 10-second spoofed-probe collection timeouts (§5.2.4),
//! * a **measurement cache** with a one-day virtual TTL (Insight 1.4),
//!
//! so that the throughput/latency/overhead results (Table 4, Fig. 5c) fall
//! out of counters rather than instrumentation.
//!
//! ```
//! use revtr_netsim::{Sim, SimConfig};
//! use revtr_probing::Prober;
//!
//! let sim = Sim::build(SimConfig::tiny(), 7);
//! let prober = Prober::new(&sim);
//! let vp = sim.topo().vp_sites[0].host;
//! let dst = sim.topo().vp_sites[1].host;
//! prober.rr_ping(vp, dst).expect("VP answers RR");
//! assert_eq!(prober.counters().snapshot().rr, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod counters;
pub mod prober;
pub mod stopset;

pub use cache::{CacheStats, CachedRr, MeasurementCache, RrKey, DEFAULT_TTL_HOURS};
pub use clock::{Clock, SPOOF_BATCH_TIMEOUT_MS};
pub use counters::{Counters, ProbeKind, Snapshot};
pub use prober::{
    BatchReply, ProbeLoss, Prober, RetryPolicy, RrProvenance, PROBE_TIMEOUT_MS,
    TRACEROUTE_TIMEOUT_MS,
};
pub use revtr_telemetry::{RequestScope, SpanToken, Telemetry, TelemetryConfig, WatchdogFlag};
pub use stopset::{BackwardEntry, Contribution, Note, StopSet, StopSetSnapshot, StoredRr};
