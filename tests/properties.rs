//! Property-based tests (proptest) over the simulator's core invariants:
//! whatever the seed and knobs, routing stays valley-free and loop-free,
//! Record Route semantics stay within spec, and measurements stay
//! deterministic and destination-based.

use proptest::prelude::*;
use revtr_suite::netsim::sim::PktMeta;
use revtr_suite::netsim::{
    Addr, AsId, Rel, ScenarioConfig, ScenarioProfile, Scenarios, Sim, SimConfig, RR_SLOTS,
};

fn tiny_sim(seed: u64) -> Sim {
    Sim::build(SimConfig::tiny(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Valley-free + loop-free BGP for arbitrary seeds and destinations.
    #[test]
    fn bgp_paths_are_valley_free(seed in 0u64..500, dst_idx in 0usize..70, salt in 0u64..1000) {
        let sim = tiny_sim(seed);
        let n = sim.topo().n_ases();
        let dst = AsId((dst_idx % n) as u32);
        let routes = revtr_suite::netsim::bgp::routes_to(sim.topo(), dst, salt);
        for x in 0..n {
            let path = routes.as_path(AsId(x as u32)).expect("connected topology");
            // Loop-free.
            let mut sorted = path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len());
            // Valley-free.
            let mut descended = false;
            for w in path.windows(2) {
                match sim.topo().asn(w[0]).rel_with(w[1]).expect("adjacent") {
                    Rel::Provider => prop_assert!(!descended),
                    Rel::Peer => {
                        prop_assert!(!descended);
                        descended = true;
                    }
                    Rel::Customer => descended = true,
                }
            }
        }
    }

    /// RR replies never exceed nine slots and never contain the network
    /// address of a /24 — from *any* vantage point, not just site 0 (the
    /// probing VP determines the forward leg, so each VP exercises a
    /// different split of the nine slots).
    #[test]
    fn rr_slots_respect_rfc791(
        seed in 0u64..200,
        vp_pick in 0usize..32,
        dst_pick in 0usize..60,
        nonce in 0u64..50,
    ) {
        let sim = tiny_sim(seed);
        let vps = &sim.topo().vp_sites;
        let src = vps[vp_pick % vps.len()].host;
        let prefixes = &sim.topo().prefixes;
        let pe = &prefixes[dst_pick % prefixes.len()];
        let dst = sim.host_addrs(pe.id).next().expect("hosts");
        if dst == src { return Ok(()); }
        if let Some(r) = sim.rr_ping(src, dst, nonce) {
            prop_assert!(r.slots.len() <= RR_SLOTS);
            for s in &r.slots {
                prop_assert_ne!(*s, Addr::ZERO);
            }
            prop_assert!(r.rtt_ms > 0.0);
        }
    }

    /// Forwarding is destination-based: two walks from the same router to
    /// the same destination with different plain flows traverse identical
    /// routers unless a load balancer intervenes — and with the same meta
    /// they are always identical.
    #[test]
    fn walks_are_deterministic(seed in 0u64..200, a in 0usize..60, b in 0usize..60) {
        let sim = tiny_sim(seed);
        let prefixes = &sim.topo().prefixes;
        let src_pe = &prefixes[a % prefixes.len()];
        let dst_pe = &prefixes[b % prefixes.len()];
        let src = sim.host_addrs(src_pe.id).next().expect("hosts");
        let dst = sim.host_addrs(dst_pe.id).nth(1).expect("hosts");
        if src == dst { return Ok(()); }
        let attach = sim.topo().prefix(src_pe.id).attach;
        let meta = PktMeta::plain(src, 7);
        let w1 = sim.walk(attach, dst, &meta);
        let w2 = sim.walk(attach, dst, &meta);
        match (w1, w2) {
            (Some(x), Some(y)) => {
                let rx: Vec<_> = x.hops.iter().map(|h| h.router).collect();
                let ry: Vec<_> = y.hops.iter().map(|h| h.router).collect();
                prop_assert_eq!(rx, ry);
            }
            (None, None) => {}
            _ => prop_assert!(false, "non-deterministic reachability"),
        }
    }

    /// Paris traceroute invariants: flow-stable, hop count bounded, and
    /// the destination appears only as the final hop.
    #[test]
    fn traceroute_invariants(seed in 0u64..200, pick in 0usize..60) {
        let sim = tiny_sim(seed);
        let src = sim.topo().vp_sites[pick % sim.topo().vp_sites.len()].host;
        let prefixes = &sim.topo().prefixes;
        let pe = &prefixes[(pick * 7) % prefixes.len()];
        let dst = sim.host_addrs(pe.id).nth(3).expect("hosts");
        if dst == src { return Ok(()); }
        if let Some(t) = sim.traceroute(src, dst, 5) {
            prop_assert!(t.hops.len() <= 66);
            if t.reached {
                prop_assert_eq!(t.hops.last().copied().flatten(), Some(dst));
                for h in &t.hops[..t.hops.len() - 1] {
                    prop_assert_ne!(*h, Some(dst));
                }
            }
        }
    }

    /// Spoofed replies land at the claimed source with identical slot
    /// contents regardless of which capable sender emitted them (the
    /// decoupling that Insight 1.3 exploits).
    #[test]
    fn spoofed_reply_content_is_sender_independent(seed in 0u64..100, pick in 0usize..40) {
        let sim = tiny_sim(seed);
        let vps = &sim.topo().vp_sites;
        if vps.len() < 3 { return Ok(()); }
        let claimed = vps[0].host;
        let prefixes = &sim.topo().prefixes;
        let pe = &prefixes[pick % prefixes.len()];
        let dst = sim.host_addrs(pe.id).next().expect("hosts");
        // Two different spoof-capable senders, same nonce: the *reverse*
        // part of the slots (after the destination stamp) must agree,
        // because the reply path only depends on (dst, claimed source).
        let r1 = sim.rr_ping_from(vps[1].host, claimed, dst, 9);
        let r2 = sim.rr_ping_from(vps[2].host, claimed, dst, 9);
        if let (Some(r1), Some(r2)) = (r1, r2) {
            let tail = |r: &revtr_suite::netsim::RrReply| -> Option<Vec<Addr>> {
                let pos = r.slots.iter().position(|&s| s == dst)?;
                Some(r.slots[pos + 1..].to_vec())
            };
            if let (Some(t1), Some(t2)) = (tail(&r1), tail(&r2)) {
                // Truncate to the shorter (forward lengths differ, so one
                // reply may have fewer free slots).
                let n = t1.len().min(t2.len());
                prop_assert_eq!(&t1[..n], &t2[..n]);
            }
        }
    }

    /// Host behaviour flags are consistent: RR-responsive ⊆
    /// ping-responsive, TS-responsive ⊆ ping-responsive.
    #[test]
    fn responsiveness_hierarchy(seed in 0u64..100, raw in 0u32..100_000) {
        let sim = tiny_sim(seed);
        let prefixes = &sim.topo().prefixes;
        let pe = &prefixes[(raw as usize) % prefixes.len()];
        let host = Addr(pe.prefix.base.0 + 10 + raw % 240);
        let b = sim.behavior();
        if b.host_rr_responsive(host) {
            prop_assert!(b.host_ping_responsive(host));
        }
        if b.host_ts_responsive(host) {
            prop_assert!(b.host_ping_responsive(host));
        }
    }
}

/// One representative adversarial draw per profile, over arbitrary entity
/// keys, encoded for equality comparison. Each profile's draws must be a
/// pure function of (seed, own severity, entity keys).
fn profile_draw(s: &Scenarios, p: ScenarioProfile, e1: u64, e2: u64, attempt: u64) -> u64 {
    let addr1 = Addr(0x0b00_0000 | (e1 as u32 & 0x00ff_ffff));
    let addr2 = Addr(0x0b00_0000 | (e2 as u32 & 0x00ff_ffff));
    let asn = AsId((e1 % 64) as u32);
    match p {
        ScenarioProfile::SpoofFilterRollout => u64::from(s.spoof_filtered(asn, addr2)),
        ScenarioProfile::DbrViolationRegion => u64::from(s.dbr_region(asn)),
        ScenarioProfile::LyingRrResponders => {
            // The pick helper is unconditional (callers consult it only
            // after the lie draw fires), so encode it only when it fires.
            if s.lying_responder(addr1) {
                1 << 8 | s.lie_pick(addr1, addr2, 5) as u64
            } else {
                0
            }
        }
        ScenarioProfile::AsymmetricRateLimiters => {
            u64::from(s.rate_limited(addr1, addr2, attempt.is_multiple_of(2), attempt))
        }
        ScenarioProfile::PoisonedAtlas => u64::from(s.poisoned_trace(addr1, addr2)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A severity-0 profile is the clean Internet: whatever the seed, no
    /// draw fires and probe replies are byte-identical to a scenario-free
    /// sim's. (The campaign-level twin of this property is pinned in
    /// `eval::scenarios::tests::severity_zero_profile_is_byte_identical_to_clean`.)
    #[test]
    fn severity_zero_scenarios_never_perturb(
        seed in 0u64..200,
        prof in 0usize..5,
        vp_pick in 0usize..32,
        dst_pick in 0usize..60,
        nonce in 0u64..20,
    ) {
        let profile = ScenarioProfile::ALL[prof];
        let zero = ScenarioConfig::profile_at(profile, 0.0);
        prop_assert!(!zero.any_enabled());
        let s = Scenarios::new(seed, zero.clone());
        prop_assert_eq!(profile_draw(&s, profile, vp_pick as u64, dst_pick as u64, nonce), 0);

        let clean_sim = tiny_sim(seed);
        let mut cfg = SimConfig::tiny();
        cfg.scenario = zero;
        let zero_sim = Sim::build(cfg, seed);
        let vps = &clean_sim.topo().vp_sites;
        let src = vps[vp_pick % vps.len()].host;
        let prefixes = &clean_sim.topo().prefixes;
        let pe = &prefixes[dst_pick % prefixes.len()];
        let dst = clean_sim.host_addrs(pe.id).next().expect("hosts");
        if dst == src { return Ok(()); }
        let a = clean_sim.rr_ping(src, dst, nonce);
        let b = zero_sim.rr_ping(src, dst, nonce);
        prop_assert_eq!(
            a.as_ref().map(|r| (&r.slots, r.rtt_ms)),
            b.as_ref().map(|r| (&r.slots, r.rtt_ms))
        );
    }

    /// Composing two profiles never couples their randomness: profile A's
    /// draws under `A ∘ B` are bit-identical to its draws under A alone,
    /// for every ordered pair, severity mix, and entity key. Each profile
    /// draws from its own salted stream, so dialling one adversary up can
    /// never reshuffle another's behavior.
    #[test]
    fn composed_profiles_draw_independently(
        seed in 0u64..200,
        pa in 0usize..5,
        pb in 0usize..5,
        sev_a in 1u32..=10,
        sev_b in 1u32..=10,
        e1 in 0u64..10_000,
        e2 in 0u64..10_000,
        attempt in 0u64..8,
    ) {
        let (a, b) = (ScenarioProfile::ALL[pa], ScenarioProfile::ALL[pb]);
        if a == b { return Ok(()); }
        let sev_a = f64::from(sev_a) / 10.0;
        let sev_b = f64::from(sev_b) / 10.0;
        let alone = Scenarios::new(seed, ScenarioConfig::profile_at(a, sev_a));
        let composed = Scenarios::new(
            seed,
            ScenarioConfig::profile_at(a, sev_a).with_profile_at(b, sev_b),
        );
        prop_assert_eq!(
            profile_draw(&alone, a, e1, e2, attempt),
            profile_draw(&composed, a, e1, e2, attempt)
        );
    }
}

/// Pinned failing-case replays. The vendored proptest shim has no failure
/// persistence or shrinking, so inputs that ever exposed a bug are pinned
/// here as explicit tests (and recorded in `proptest-regressions/
/// properties.txt`). These run on every `cargo test`, not just when the
/// generator happens to land on them.
mod regressions {
    use revtr_suite::netsim::{Addr, Sim, SimConfig, RR_SLOTS};
    use revtr_suite::revtr::extract_reverse_hops;

    /// Seed 0, src 11.7.128.4 (VP site 0), dst 11.0.16.26 (a router
    /// interface): the forward path traverses the destination router, so
    /// the destination address is stamped at slot 1 (forward leg) *and*
    /// slot 3 (the forward/reply boundary). First-occurrence extraction
    /// used to misread the forward stamps `[10.0.0.3, 11.0.16.26, ...]`
    /// as reverse hops; extraction must cut at the *last* occurrence.
    #[test]
    fn pinned_seed0_dest_traversed_on_forward_leg() {
        let sim = Sim::build(SimConfig::tiny(), 0);
        let src = sim.topo().vp_sites[0].host;
        assert_eq!(src, Addr::new(11, 7, 128, 4), "pinned topology changed");
        let dst = Addr::new(11, 0, 16, 26);
        let r = sim.rr_ping(src, dst, 0).expect("pinned dest answers");
        assert!(
            r.slots.iter().filter(|&&s| s == dst).count() >= 2,
            "pinned case no longer traverses the destination: {:?}",
            r.slots
        );
        let rev = extract_reverse_hops(&r.slots, dst).expect("dest stamped");
        assert!(
            !rev.contains(&dst),
            "reverse hops contain the destination itself: {rev:?}"
        );
        assert_eq!(
            rev,
            vec![Addr::new(11, 3, 16, 21), Addr::new(11, 7, 128, 1)]
        );
    }

    /// Same shape with the duplicate stamps *adjacent* (slots 3 and 4):
    /// the last-occurrence rule and the adjacent-duplicate fallback must
    /// agree on the boundary.
    #[test]
    fn pinned_seed0_dest_stamps_adjacent_pair() {
        let sim = Sim::build(SimConfig::tiny(), 0);
        let src = sim.topo().vp_sites[0].host;
        let dst = Addr::new(11, 0, 16, 5);
        let r = sim.rr_ping(src, dst, 0).expect("pinned dest answers");
        assert_eq!(&r.slots[3..5], &[dst, dst], "pinned slot layout changed");
        let rev = extract_reverse_hops(&r.slots, dst).expect("dest stamped");
        assert_eq!(
            rev,
            vec![
                Addr::new(11, 0, 16, 29),
                Addr::new(11, 3, 16, 17),
                Addr::new(11, 7, 16, 1),
                Addr::new(11, 7, 16, 6),
            ]
        );
    }

    /// Seed 0, prefix 2's first host answers RR in Private mode: the
    /// destination's own address never appears, only a doubled private
    /// stamp (`10.0.0.9, 10.0.0.9`) at the forward/reply boundary. The
    /// adjacent-duplicate fallback must find the boundary and return only
    /// the reply-leg hops.
    #[test]
    fn pinned_seed0_private_dest_doubles_stamp_at_boundary() {
        let sim = Sim::build(SimConfig::tiny(), 0);
        let src = sim.topo().vp_sites[0].host;
        let pe = &sim.topo().prefixes[2];
        let dst = sim.host_addrs(pe.id).next().expect("hosts");
        let r = sim.rr_ping(src, dst, 0).expect("pinned dest answers");
        assert!(!r.slots.contains(&dst), "dest must stamp privately here");
        let dup = Addr::new(10, 0, 0, 9);
        assert_eq!(&r.slots[3..5], &[dup, dup], "pinned slot layout changed");
        let rev = extract_reverse_hops(&r.slots, dst).expect("fallback fires");
        assert_eq!(
            rev,
            vec![
                Addr::new(11, 2, 16, 13),
                Addr::new(11, 3, 16, 21),
                Addr::new(11, 7, 128, 1),
            ]
        );
    }

    /// Seed 0, prefix 3's first host: the reply consumes all nine RR
    /// slots — the RFC 791 cap is reached exactly, never exceeded.
    #[test]
    fn pinned_seed0_reply_fills_all_nine_slots() {
        let sim = Sim::build(SimConfig::tiny(), 0);
        let src = sim.topo().vp_sites[0].host;
        let pe = &sim.topo().prefixes[3];
        let dst = sim.host_addrs(pe.id).next().expect("hosts");
        let r = sim.rr_ping(src, dst, 0).expect("pinned dest answers");
        assert_eq!(r.slots.len(), RR_SLOTS);
    }
}
