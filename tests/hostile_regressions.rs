//! Pinned hostile-scenario replays and audit-oracle regressions.
//!
//! One minimized, fully concrete replay per adversarial profile (tiny
//! topology, seed 1): the exact entities the profile's salted draws
//! select, and the exact perturbation the sim applies to them. These are
//! the scenario layer's counterpart of the pinned extraction regressions
//! in `properties.rs` — the vendored proptest shim has no shrinking, so
//! cases that matter are pinned as explicit tests. If a pin breaks, the
//! scenario draws are no longer seed-pure (or the tiny topology moved).
//!
//! On top of the replays, the audit-oracle regressions: fabricated RR
//! evidence must never be *silently* accepted — the stock engine may
//! adopt it, but the ground-truth auditor must flag the adoption
//! `Unsound`, and the hardened engine must reject it up front (visible in
//! its filter counters), completing with zero unsound hops.

use revtr_suite::atlas::select_atlas_probes;
use revtr_suite::audit::Auditor;
use revtr_suite::netsim::sim::PktMeta;
use revtr_suite::netsim::{Addr, ScenarioConfig, ScenarioProfile, Sim, SimConfig};
use revtr_suite::probing::{Prober, Telemetry};
use revtr_suite::revtr::{BatchPolicy, EngineConfig, LoopConfig, RevtrSystem, Status};
use revtr_suite::vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

/// The tiny sim at seed 1 with one profile dialled to its default
/// severity — the fixture every pin below replays against.
fn hostile_sim(profile: ScenarioProfile) -> Sim {
    let mut cfg = SimConfig::tiny();
    cfg.scenario = ScenarioConfig::profile(profile);
    Sim::build(cfg, 1)
}

fn clean_sim() -> Sim {
    Sim::build(SimConfig::tiny(), 1)
}

/// Pinned VP site 0 of the tiny seed-1 topology.
const SRC: Addr = Addr::new(11, 3, 128, 4);

#[test]
fn pinned_lying_responder_rewrites_reply_leg_only() {
    // Seed 1, dst 11.0.128.10 draws as a lying responder: the forward leg
    // and the destination stamp survive verbatim, but every reply-leg
    // stamp is rewritten to a plausible-but-false interface address. The
    // lie is stable (same nonce, same lie) so caches and retries agree.
    let clean = clean_sim();
    let hostile = hostile_sim(ScenarioProfile::LyingRrResponders);
    assert_eq!(clean.topo().vp_sites[0].host, SRC, "pinned topology moved");
    let dst = Addr::new(11, 0, 128, 10);
    let truth = clean.rr_ping(SRC, dst, 0).expect("pinned dest answers");
    let lied = hostile.rr_ping(SRC, dst, 0).expect("pinned dest answers");
    // Forward leg + destination stamp (slots 0..=5) are untouched.
    assert_eq!(&lied.slots[..6], &truth.slots[..6]);
    // The reply leg is fabricated wholesale, with real interfaces from
    // elsewhere in the topology — exactly what a replay oracle can catch
    // and a naive parser cannot.
    assert_eq!(
        &lied.slots[6..],
        &[
            Addr::new(11, 11, 16, 13),
            Addr::new(11, 5, 16, 49),
            Addr::new(11, 5, 16, 9),
        ],
        "pinned lie changed: scenario draws are no longer seed-pure"
    );
    assert_ne!(&lied.slots[6..], &truth.slots[6..]);
    let retry = hostile.rr_ping(SRC, dst, 0).expect("pinned dest answers");
    assert_eq!(retry.slots, lied.slots, "lie not stable across retries");
}

#[test]
fn pinned_poisoned_atlas_corrupts_one_interior_hop() {
    // Seed 1, atlas trace (vp 11.3.128.4 -> source 11.0.128.10) draws as
    // poisoned: exactly one interior hop is replaced with a
    // real-but-wrong interface, manufacturing a false intersection
    // opportunity. Endpoints are never touched.
    let clean = clean_sim();
    let hostile = hostile_sim(ScenarioProfile::PoisonedAtlas);
    let source = Addr::new(11, 0, 128, 10);
    let trace = clean.traceroute(SRC, source, 5).expect("pinned trace runs");
    assert_eq!(trace.hops.len(), 7, "pinned trace length changed");
    let mut poisoned = trace.hops.clone();
    hostile.scenario_poison_trace(SRC, source, &mut poisoned);
    assert_eq!(trace.hops[5], Some(Addr::new(11, 0, 16, 5)));
    assert_eq!(
        poisoned[5],
        Some(Addr::new(11, 4, 16, 53)),
        "pinned poison changed: scenario draws are no longer seed-pure"
    );
    let diffs = poisoned
        .iter()
        .zip(&trace.hops)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(diffs, 1, "poison must corrupt exactly one hop");
    assert_eq!(poisoned.first(), trace.hops.first());
    assert_eq!(poisoned.last(), trace.hops.last());
}

#[test]
fn pinned_spoof_filter_drop_is_persistent() {
    // Seed 1, VP 11.8.128.4's AS is in the rollout cohort and the draw
    // for destination 11.0.128.11 falls inside the rollout frontier: its
    // spoofed probes are eaten, and — keyed purely on (VP AS, dst) with
    // no attempt index — they stay eaten forever. Retries cannot help;
    // only VP quarantine can stop the bleeding.
    let hostile = hostile_sim(ScenarioProfile::SpoofFilterRollout);
    let vp = Addr::new(11, 8, 128, 4);
    let dst = Addr::new(11, 0, 128, 11);
    for _ in 0..3 {
        assert!(
            hostile.scenario_spoof_dropped(vp, dst),
            "pinned rollout drop changed: scenario draws are no longer seed-pure"
        );
    }
    // The clean sim never drops.
    assert!(!clean_sim().scenario_spoof_dropped(vp, dst));
}

#[test]
fn pinned_rate_limiter_rerolls_and_is_asymmetric() {
    // Seed 1, destination 11.0.128.11 draws as a rate limiter. Spoofed
    // probes from VP site 0 are dropped on attempts 0..=9 but land on
    // attempt 10 — every attempt re-rolls, so persistence (a raised stall
    // budget) recovers the pair. Direct probes are policed far more
    // gently: the asymmetry that makes the profile bite spoofed ladders
    // specifically.
    let hostile = hostile_sim(ScenarioProfile::AsymmetricRateLimiters);
    let dst = Addr::new(11, 0, 128, 11);
    let spoof_drops: Vec<u64> = (0..12)
        .filter(|&a| hostile.scenario_rate_limited(dst, SRC, true, a))
        .collect();
    let direct_drops: Vec<u64> = (0..12)
        .filter(|&a| hostile.scenario_rate_limited(dst, SRC, false, a))
        .collect();
    assert_eq!(
        spoof_drops,
        vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11],
        "pinned spoofed-drop schedule changed: draws are no longer seed-pure"
    );
    assert!(
        !hostile.scenario_rate_limited(dst, SRC, true, 10),
        "attempt 10 must land (the re-roll the stall budget exists for)"
    );
    assert_eq!(
        direct_drops,
        vec![2, 8, 11],
        "pinned direct-drop schedule changed"
    );
    assert!(direct_drops.len() < spoof_drops.len(), "asymmetry inverted");
}

#[test]
fn pinned_dbr_region_source_routes_option_packets() {
    // Seed 1, walks from prefix 0's attachment router to 11.4.128.10:
    // with the DBR-violating region active, *option-carrying* packets
    // from different claimed sources take different router paths — the
    // destination-based-routing assumption spoofed RR relies on is broken
    // — while plain packets (the oracle's ground truth) are untouched.
    let hostile = hostile_sim(ScenarioProfile::DbrViolationRegion);
    let dst = Addr::new(11, 4, 128, 10);
    let (s1, s2) = (SRC, Addr::new(11, 8, 128, 4));
    let attach = hostile.topo().prefix(hostile.topo().prefixes[0].id).attach;
    let routers = |sim: &Sim, src: Addr, options: bool| -> Vec<_> {
        let meta = if options {
            PktMeta::options(src, 7)
        } else {
            PktMeta::plain(src, 7)
        };
        sim.walk(attach, dst, &meta)
            .expect("pinned walk reaches")
            .hops
            .iter()
            .map(|h| h.router)
            .collect()
    };
    assert_ne!(
        routers(&hostile, s1, true),
        routers(&hostile, s2, true),
        "pinned DBR divergence vanished: draws are no longer seed-pure"
    );
    // Plain packets still route per destination only.
    assert_eq!(routers(&hostile, s1, false), routers(&hostile, s2, false));
    // And the clean sim routes option packets source-independently too.
    let clean = clean_sim();
    assert_eq!(routers(&clean, s1, true), routers(&clean, s2, true));
}

/// Run the 24-destination campaign over `sim` with the engine stock or
/// hardened, returning results plus the telemetry the engine reported to.
fn run_campaign(sim: &Sim, harden: bool) -> (Vec<revtr_suite::revtr::RevtrResult>, Telemetry) {
    let tele = Telemetry::enabled();
    let prober = Prober::new(sim).with_telemetry(tele.clone());
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 6);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = pool.len();
    cfg.harden = harden;
    let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);
    let src = sim.topo().vp_sites[0].host;
    let dests: Vec<Addr> = sim
        .topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a) && a != src)
        })
        .take(24)
        .collect();
    sys.register_source(src);
    let pairs: Vec<(Addr, Addr)> = dests.iter().map(|&d| (d, src)).collect();
    let results = sys
        .run_campaign(
            &pairs,
            LoopConfig {
                quantum: 64,
                policy: BatchPolicy::FillFirst,
                workers: 1,
            },
        )
        .expect("no task panicked")
        .results;
    (results, tele)
}

#[test]
fn lying_rr_is_flagged_unsound_never_silently_accepted() {
    // The audit-oracle regression at the heart of the hostile suite: when
    // responders fabricate reply-leg evidence, the *stock* engine adopts
    // it — but the adoption must always be visible to the ground-truth
    // auditor as an Unsound verdict, never silently accepted as a clean
    // path. The *hardened* engine must instead reject the evidence up
    // front (its filter counter fires) and complete with zero unsound
    // hops — coverage sacrificed, soundness kept.
    let sim = hostile_sim(ScenarioProfile::LyingRrResponders);
    let auditor = Auditor::new(&sim, EngineConfig::revtr2().registry_only_ip2as);

    let (stock, _) = run_campaign(&sim, false);
    let flagged = stock
        .iter()
        .filter(|r| r.status == Status::Complete && auditor.audit(r).failures().next().is_some())
        .count();
    assert!(
        flagged > 0,
        "stock engine adopted no lies the auditor could flag — the profile stopped biting"
    );

    let (hardened, tele) = run_campaign(&sim, true);
    for r in &hardened {
        if let Some(f) = auditor.audit(r).failures().next() {
            panic!(
                "hardened engine silently accepted fabricated evidence: {} -> {} hop {} ({}): {:?}",
                r.dst, r.src, f.index, f.kind, f.verdict
            );
        }
    }
    assert!(
        tele.metrics().counter("core.harden.rr_lies_filtered") > 0,
        "hardened engine never exercised its lie filter"
    );
}

#[test]
fn poisoned_atlas_is_rejected_not_stitched() {
    // Same regression for the atlas side: poisoned intersections must
    // never survive into a hardened path that audits unsound — they are
    // demoted to assumed-symmetric instead.
    let sim = hostile_sim(ScenarioProfile::PoisonedAtlas);
    let auditor = Auditor::new(&sim, EngineConfig::revtr2().registry_only_ip2as);
    let (stock, _) = run_campaign(&sim, false);
    let flagged = stock
        .iter()
        .filter(|r| r.status == Status::Complete && auditor.audit(r).failures().next().is_some())
        .count();
    assert!(
        flagged > 0,
        "stock engine stitched no poisoned intersections the auditor could flag"
    );
    let (hardened, _) = run_campaign(&sim, true);
    for r in &hardened {
        if let Some(f) = auditor.audit(r).failures().next() {
            panic!(
                "hardened engine stitched poisoned atlas evidence: {} -> {} hop {} ({}): {:?}",
                r.dst, r.src, f.index, f.kind, f.verdict
            );
        }
    }
}
