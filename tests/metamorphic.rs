//! Metamorphic tests over whole campaigns (seeds {1, 7, 42}).
//!
//! Semantics-preserving transforms — measurement cache on/off, worker
//! count, VP-site permutation, fault injection with a retry budget
//! generous enough to recover every transient loss — must leave every
//! stitched reverse path bit-identical (status plus per-hop address and
//! method; stats and wall-clock are excluded by construction).
//!
//! Semantics-weakening transforms — shrinking the atlas probe pool to a
//! strict subset — may only reduce coverage (fewer `Complete` paths),
//! never audited accuracy: both arms must still pass the stitch-trace
//! audit with zero unsound verdicts.
//!
//! Load balancing and churn are disabled in every arm: both make probe
//! replies depend on nonce-consumption order and virtual-time partitioning,
//! which the transforms deliberately perturb. The properties under test
//! are about the *engine*, not the simulator's stochastic layers.

use revtr_suite::atlas::select_atlas_probes;
use revtr_suite::audit::Auditor;
use revtr_suite::netsim::{Addr, FaultConfig, ScenarioConfig, ScenarioProfile, Sim, SimConfig};
use revtr_suite::probing::{Prober, RetryPolicy, Telemetry};
use revtr_suite::revtr::{BatchPolicy, EngineConfig, HopMethod, LoopConfig, RevtrSystem, Status};
use revtr_suite::vpselect::{Heuristics, IngressDb};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const SEEDS: [u64; 3] = [1, 7, 42];

/// What a transform must preserve: outcome plus the stitched path with
/// per-hop provenance method. Stats (probe counts, durations, batches)
/// are explicitly excluded — they legitimately vary across arms.
type Fingerprint = (Status, Vec<(Option<Addr>, HopMethod)>);

fn fingerprint(r: &revtr_suite::revtr::RevtrResult) -> Fingerprint {
    (
        r.status,
        r.hops.iter().map(|h| (h.addr, h.method)).collect(),
    )
}

/// Deterministic base simulator: no churn (virtual-time partitioning
/// across workers would move epoch flushes) and no per-packet load
/// balancing (retries and cache misses would re-roll paths).
fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::tiny();
    cfg.behavior.churn_per_hour = 0.0;
    cfg.behavior.router_load_balancer = 0.0;
    cfg
}

/// Arm parameters for one campaign run.
struct Arm {
    use_cache: bool,
    workers: usize,
    /// Left-rotation applied to the VP list (0 = identity).
    vp_rotation: usize,
    /// Atlas probe pool size (the selection is prefix-stable in `n`).
    atlas_pool: usize,
    /// Retry budget; `None` keeps the prober's default single attempt.
    retries: Option<u32>,
}

impl Arm {
    fn baseline() -> Arm {
        Arm {
            use_cache: true,
            workers: 1,
            vp_rotation: 0,
            atlas_pool: 100,
            retries: None,
        }
    }
}

/// The campaign workload for a sim: one RR-responsive destination per
/// prefix, all measured from a fixed source (`vp_sites[0]`, chosen
/// independently of any VP permutation the arm applies).
fn workload(sim: &Sim, n: usize) -> (Addr, Vec<Addr>) {
    let src = sim.topo().vp_sites[0].host;
    let dests: Vec<Addr> = sim
        .topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a) && a != src)
        })
        .take(n)
        .collect();
    (src, dests)
}

/// Run one campaign arm and return the per-destination fingerprints, in
/// input order regardless of worker interleaving.
fn run_arm(sim: &Sim, arm: &Arm) -> Vec<Fingerprint> {
    let prober = match arm.retries {
        Some(budget) => Prober::new(sim).with_retry_policy(RetryPolicy::uniform(budget)),
        None => Prober::new(sim),
    };
    let mut vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let n_vps = vps.len().max(1);
    vps.rotate_left(arm.vp_rotation % n_vps);
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, arm.atlas_pool, 6);
    let mut cfg = EngineConfig::revtr2();
    // Use the whole pool: the engine otherwise *samples* `atlas_size`
    // probes, and a sample of a larger pool is not a superset of a sample
    // of a smaller one — which the atlas-shrink monotonicity test needs.
    cfg.atlas_size = pool.len();
    cfg.use_cache = arm.use_cache;
    let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);

    let (src, dests) = workload(sim, 24);
    sys.register_source(src);
    assert!(dests.len() >= 8, "workload too small to be meaningful");

    if arm.workers <= 1 {
        return dests
            .iter()
            .map(|&d| fingerprint(&sys.measure(d, src)))
            .collect();
    }
    let slots: Vec<Mutex<Option<Fingerprint>>> =
        (0..dests.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..arm.workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= dests.len() {
                    break;
                }
                let fp = fingerprint(&sys.measure(dests[i], src));
                *slots[i].lock().expect("slot lock") = Some(fp);
            });
        }
    });
    slots
        .iter()
        .map(|s| s.lock().expect("slot lock").clone().expect("slot filled"))
        .collect()
}

/// Run the baseline campaign through an explicit prober (which may carry
/// an enabled telemetry handle and shared warm caches), returning the
/// stitched fingerprints in input order.
fn run_with_prober(sim: &Sim, prober: Prober<'_>, workers: usize) -> Vec<Fingerprint> {
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 6);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = pool.len();
    let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);
    let (src, dests) = workload(sim, 24);
    sys.register_source(src);
    if workers <= 1 {
        return dests
            .iter()
            .map(|&d| fingerprint(&sys.measure(d, src)))
            .collect();
    }
    let slots: Vec<Mutex<Option<Fingerprint>>> =
        (0..dests.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= dests.len() {
                    break;
                }
                let fp = fingerprint(&sys.measure(dests[i], src));
                *slots[i].lock().expect("slot lock") = Some(fp);
            });
        }
    });
    slots
        .iter()
        .map(|s| s.lock().expect("slot lock").clone().expect("slot filled"))
        .collect()
}

/// Run the baseline campaign on the deterministic event loop instead of
/// the serial driver, returning fingerprints in input order.
fn run_event_loop(sim: &Sim, lc: LoopConfig) -> Vec<Fingerprint> {
    let prober = Prober::new(sim);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 6);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = pool.len();
    let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);
    let (src, dests) = workload(sim, 24);
    sys.register_source(src);
    let pairs: Vec<(Addr, Addr)> = dests.iter().map(|&d| (d, src)).collect();
    let outcome = sys.run_campaign(&pairs, lc).expect("no task panicked");
    assert_eq!(
        outcome.inflight_peak,
        pairs.len(),
        "event loop admits the whole campaign up front"
    );
    outcome.results.iter().map(fingerprint).collect()
}

fn assert_arms_identical(name: &str, seed: u64, base: &[Fingerprint], arm: &[Fingerprint]) {
    assert_eq!(
        base.len(),
        arm.len(),
        "{name}: workload size diverged (seed {seed})"
    );
    for (i, (b, a)) in base.iter().zip(arm).enumerate() {
        assert_eq!(
            b, a,
            "{name}: stitched path diverged for request {i} (seed {seed})"
        );
    }
}

#[test]
fn cache_toggle_preserves_stitched_paths() {
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&sim, &Arm::baseline());
        let no_cache = run_arm(
            &sim,
            &Arm {
                use_cache: false,
                ..Arm::baseline()
            },
        );
        assert_arms_identical("cache off", seed, &base, &no_cache);
    }
}

#[test]
fn worker_count_preserves_stitched_paths() {
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&sim, &Arm::baseline());
        let parallel = run_arm(
            &sim,
            &Arm {
                workers: 8,
                ..Arm::baseline()
            },
        );
        assert_arms_identical("8 workers", seed, &base, &parallel);
    }
}

#[test]
fn event_loop_quantum_preserves_stitched_paths() {
    // The virtual event loop must stitch exactly what the serial driver
    // stitches, at any dispatch quantum: the scheduled interleaving
    // changes, each request's own probe sequence does not.
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&sim, &Arm::baseline());
        for quantum in [1usize, 4, 16] {
            let looped = run_event_loop(
                &sim,
                LoopConfig {
                    quantum,
                    policy: BatchPolicy::FillFirst,
                    workers: 1,
                },
            );
            assert_arms_identical(&format!("event loop q{quantum}"), seed, &base, &looped);
        }
    }
}

#[test]
fn event_loop_dispatch_workers_preserve_stitched_paths() {
    // The parallel dispatch path only overlaps a round's step execution
    // — the schedule itself (round formation, result processing) stays
    // on the loop thread in (vtime, id, seq) order — so any worker
    // count, including the production LoopConfig::parallel() shape,
    // must stitch exactly what the serial loop stitches.
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&sim, &Arm::baseline());
        for workers in [1usize, 4, 16] {
            let looped = run_event_loop(
                &sim,
                LoopConfig {
                    quantum: 64,
                    policy: BatchPolicy::FillFirst,
                    workers,
                },
            );
            assert_arms_identical(&format!("event loop w{workers}"), seed, &base, &looped);
        }
    }
}

#[test]
fn event_loop_batch_policy_preserves_stitched_paths() {
    // Fill-first and deadline-first round formation dispatch the same
    // per-request step sequences in different global orders; the
    // stitched paths must be bit-identical either way.
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&sim, &Arm::baseline());
        let fill = run_event_loop(
            &sim,
            LoopConfig {
                quantum: 8,
                policy: BatchPolicy::FillFirst,
                workers: 1,
            },
        );
        let deadline = run_event_loop(
            &sim,
            LoopConfig {
                quantum: 8,
                policy: BatchPolicy::DeadlineFirst,
                workers: 1,
            },
        );
        assert_arms_identical("fill-first", seed, &base, &fill);
        assert_arms_identical("deadline-first", seed, &base, &deadline);
    }
}

#[test]
fn vp_permutation_preserves_stitched_paths() {
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&sim, &Arm::baseline());
        for rotation in [1, 5] {
            let rotated = run_arm(
                &sim,
                &Arm {
                    vp_rotation: rotation,
                    ..Arm::baseline()
                },
            );
            assert_arms_identical("VP rotation", seed, &base, &rotated);
        }
    }
}

#[test]
fn recovered_faults_preserve_stitched_paths() {
    // Transient loss with a retry budget generous enough that the chance
    // of exhausting it (0.3^25) is negligible: every lost probe is
    // eventually resent and — with load balancing off — answered
    // identically, so the stitched paths must match the fault-free run.
    for seed in SEEDS {
        let clean_sim = Sim::build(base_cfg(), seed);
        let base = run_arm(&clean_sim, &Arm::baseline());

        let mut faulty = base_cfg();
        faulty.faults = FaultConfig::lossy(0.3);
        let faulty_sim = Sim::build(faulty, seed);
        let recovered = run_arm(
            &faulty_sim,
            &Arm {
                retries: Some(25),
                ..Arm::baseline()
            },
        );
        assert_arms_identical("faults + retries", seed, &base, &recovered);
    }
}

#[test]
fn telemetry_enabled_is_behaviour_neutral() {
    // Tracing is off by default, and turning it on must be invisible to
    // the measurement layer: identical stitched paths, identical probe
    // counters, identical virtual-time consumption.
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);

        let plain = Prober::new(&sim);
        assert!(
            !plain.telemetry().is_enabled(),
            "telemetry must be disabled by default"
        );
        let base = run_with_prober(&sim, plain.clone(), 1);
        let base_probes = plain.counters().snapshot();
        let base_ms = plain.clock().now_ms();

        let tele = Telemetry::enabled();
        let traced_prober = Prober::new(&sim).with_telemetry(tele.clone());
        let traced = run_with_prober(&sim, traced_prober.clone(), 1);
        let traced_probes = traced_prober.counters().snapshot();
        let traced_ms = traced_prober.clock().now_ms();

        assert_arms_identical("telemetry on", seed, &base, &traced);
        assert_eq!(
            base_probes, traced_probes,
            "telemetry changed probe counts (seed {seed})"
        );
        assert_eq!(
            base_ms, traced_ms,
            "telemetry changed virtual time (seed {seed})"
        );
        // ...while actually recording: the traced arm saw every request.
        assert_eq!(
            tele.metrics().counter("request.count"),
            traced.len() as u64,
            "traced arm missed requests (seed {seed})"
        );
    }
}

#[test]
fn telemetry_metrics_and_journal_are_deterministic() {
    for seed in SEEDS {
        // (a) Cold, serial: repeated runs on fresh identical sims produce
        // byte-identical metrics snapshots and journals.
        let cold_run = || {
            let sim = Sim::build(base_cfg(), seed);
            let tele = Telemetry::enabled();
            let prober = Prober::new(&sim).with_telemetry(tele.clone());
            let _ = run_with_prober(&sim, prober, 1);
            (tele.metrics_fingerprint(), tele.journal_fingerprint())
        };
        let first = cold_run();
        let second = cold_run();
        assert_eq!(first, second, "cold rerun diverged (seed {seed})");
        assert_ne!(first.0, 0, "metrics fingerprint empty (seed {seed})");
        assert_ne!(first.1, 0, "journal fingerprint empty (seed {seed})");

        // (b) Worker-count invariance: once the measurement cache is warm
        // (clones of one prober share cache, counters, and clock), a
        // serial and an 8-worker campaign record identical telemetry —
        // per-thread virtual time keeps span durations interleaving-free.
        let sim = Sim::build(base_cfg(), seed);
        let shared = Prober::new(&sim);
        let _ = run_with_prober(&sim, shared.clone(), 1); // warm caches, no tracing

        let serial_tele = Telemetry::enabled();
        let _ = run_with_prober(&sim, shared.with_telemetry(serial_tele.clone()), 1);
        let parallel_tele = Telemetry::enabled();
        let _ = run_with_prober(&sim, shared.with_telemetry(parallel_tele.clone()), 8);

        assert_eq!(
            serial_tele.metrics_fingerprint(),
            parallel_tele.metrics_fingerprint(),
            "metrics depend on worker count (seed {seed})"
        );
        assert_eq!(
            serial_tele.journal_fingerprint(),
            parallel_tele.journal_fingerprint(),
            "journal depends on worker count (seed {seed})"
        );
    }
}

#[test]
fn slo_verdicts_and_exports_are_worker_count_invariant() {
    // The PR-5 judgment layer inherits telemetry's interleaving
    // independence: on a warm shared prober, a serial and an 8-worker
    // campaign produce byte-identical Chrome-trace / Prometheus exports
    // and identical SLO verdicts.
    use revtr_suite::telemetry::{chrome_trace_json, prometheus_text, SloInput, SloPolicy};

    let policy = SloPolicy::parse_toml(
        r#"
        [[rule]]
        name = "requests-present"
        kind = "counter_max"
        counter = "probing.transient_lost"
        max = 0

        [[rule]]
        name = "request-p99"
        kind = "quantile_max"
        histogram = "request.virtual_us"
        q = 0.99
        max = 400000000

        [[rule]]
        name = "burn"
        kind = "burn_rate"
        window_ms = 600000.0
        slow_ms = 120000.0
        budget = 0.05
        max_burn = 20.0
        "#,
    )
    .expect("policy parses");

    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let shared = Prober::new(&sim);
        let _ = run_with_prober(&sim, shared.clone(), 1); // warm caches

        let judge = |workers: usize| {
            let tele = Telemetry::enabled();
            let _ = run_with_prober(&sim, shared.with_telemetry(tele.clone()), workers);
            let snapshot = tele.metrics();
            let journal = tele.journal_records();
            let report = policy.evaluate(&SloInput {
                snapshot: &snapshot,
                requests: &journal,
                derived: &[],
            });
            (
                chrome_trace_json(&journal),
                prometheus_text(&snapshot),
                format!("{:?}", report.verdicts),
            )
        };
        let serial = judge(1);
        let parallel = judge(8);
        assert_eq!(
            serial.0, parallel.0,
            "chrome trace depends on worker count (seed {seed})"
        );
        assert_eq!(
            serial.1, parallel.1,
            "prometheus exposition depends on worker count (seed {seed})"
        );
        assert_eq!(
            serial.2, parallel.2,
            "SLO verdicts depend on worker count (seed {seed})"
        );
        assert!(
            serial.2.contains("pass: true"),
            "expected at least one passing verdict (seed {seed}): {}",
            serial.2
        );
    }
}

/// Build a campaign system with the stop sets toggled, returning it with
/// a counter-sharing prober clone and the baseline workload.
fn stop_set_system<'s>(
    sim: &'s Sim,
    use_stop_sets: bool,
) -> (RevtrSystem<'s>, Prober<'s>, Addr, Vec<Addr>) {
    let prober = Prober::new(sim);
    let shared = prober.clone();
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 6);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = pool.len();
    cfg.use_stop_sets = use_stop_sets;
    let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);
    let (src, dests) = workload(sim, 24);
    sys.register_source(src);
    (sys, shared, src, dests)
}

#[test]
fn stop_set_toggle_preserves_stitched_paths_across_dispatch_workers() {
    // The campaign stop sets must be a pure probe economy: with churn off,
    // replayed forward-set observations are bitwise what a fresh probe
    // would return, so toggling them on — at any dispatch worker count —
    // must leave every stitched path identical to the off control while
    // measurably saving atlas probes. This is the on/off arm of the
    // metamorphic suite the deterministic merge barrier exists for:
    // contributions fold in (vtime, id, seq) order, so OS scheduling
    // across {1, 4, 16} workers cannot leak into the published view.
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let (off_sys, off_probes, src, dests) = stop_set_system(&sim, false);
        let pairs: Vec<(Addr, Addr)> = dests.iter().map(|&d| (d, src)).collect();
        let off = off_sys
            .run_campaign(
                &pairs,
                LoopConfig {
                    quantum: 64,
                    policy: BatchPolicy::FillFirst,
                    workers: 1,
                },
            )
            .expect("no task panicked");
        let off_fp: Vec<Fingerprint> = off.results.iter().map(fingerprint).collect();
        assert_eq!(
            off_sys.stopset().stats().total_hits(),
            0,
            "off control touched the stop sets (seed {seed})"
        );
        let off_atlas_rr = off_probes.counters().snapshot().atlas_rr;

        for workers in [1usize, 4, 16] {
            let (on_sys, on_probes, on_src, on_dests) = stop_set_system(&sim, true);
            assert_eq!(
                (on_src, &on_dests),
                (src, &dests),
                "workload moved between arms"
            );
            let on = on_sys
                .run_campaign(
                    &pairs,
                    LoopConfig {
                        quantum: 64,
                        policy: BatchPolicy::FillFirst,
                        workers,
                    },
                )
                .expect("no task panicked");
            let on_fp: Vec<Fingerprint> = on.results.iter().map(fingerprint).collect();
            assert_arms_identical(&format!("stop sets on, w{workers}"), seed, &off_fp, &on_fp);
            assert!(
                on_sys.stopset().stats().total_hits() > 0,
                "on arm never hit the stop sets (seed {seed}, w{workers})"
            );
            assert!(
                on_probes.counters().snapshot().atlas_rr < off_atlas_rr,
                "forward set saved no atlas probes (seed {seed}, w{workers})"
            );
        }
    }
}

#[test]
fn stop_set_reuse_is_audit_sound_and_coverage_monotone() {
    // Cross-request evidence reuse: a second campaign over the same pairs
    // consults the backward set the first campaign published at its wave
    // barrier. Every reused observation carries its *send-time*
    // provenance, so the reusing results must replay clean against the
    // ground-truth auditor — zero unsound hops — and reuse may never
    // cost coverage.
    let complete = |fps: &[Fingerprint]| fps.iter().filter(|(s, _)| *s == Status::Complete).count();
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);
        let (sys, _probes, src, dests) = stop_set_system(&sim, true);
        let pairs: Vec<(Addr, Addr)> = dests.iter().map(|&d| (d, src)).collect();
        let lc = || LoopConfig {
            quantum: 64,
            policy: BatchPolicy::FillFirst,
            workers: 4,
        };
        let first = sys.run_campaign(&pairs, lc()).expect("no task panicked");
        let h1 = sys.stopset().stats();
        let second = sys.run_campaign(&pairs, lc()).expect("no task panicked");
        let reuse = sys.stopset().stats().since(&h1);
        assert!(
            reuse.backward_hits > 0,
            "second campaign never reused backward evidence (seed {seed})"
        );

        let auditor = Auditor::new(&sim, EngineConfig::revtr2().registry_only_ip2as);
        for r in &second.results {
            if let Some(f) = auditor.audit(r).failures().next() {
                panic!(
                    "reused evidence audits unsound (seed {seed}): {} -> {} hop {} ({}): {:?}",
                    r.dst, r.src, f.index, f.kind, f.verdict
                );
            }
        }

        let first_fp: Vec<Fingerprint> = first.results.iter().map(fingerprint).collect();
        let second_fp: Vec<Fingerprint> = second.results.iter().map(fingerprint).collect();
        assert!(
            complete(&second_fp) >= complete(&first_fp),
            "evidence reuse reduced coverage (seed {seed}): {} < {}",
            complete(&second_fp),
            complete(&first_fp)
        );
    }
}

/// Run one campaign over a scenario-bearing sim with the engine stock or
/// hardened, returning the full results in input order.
fn run_scenario_arm(
    sim: &Sim,
    harden: bool,
    workers: usize,
) -> Vec<revtr_suite::revtr::RevtrResult> {
    let prober = Prober::new(sim);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 6);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = pool.len();
    cfg.harden = harden;
    let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);
    let (src, dests) = workload(sim, 24);
    sys.register_source(src);
    let pairs: Vec<(Addr, Addr)> = dests.iter().map(|&d| (d, src)).collect();
    sys.run_campaign(
        &pairs,
        LoopConfig {
            quantum: 64,
            policy: BatchPolicy::FillFirst,
            workers,
        },
    )
    .expect("no task panicked")
    .results
}

/// Requests that completed *and* replay clean against the ground-truth
/// auditor — the integer form of correct coverage. Fabrication profiles
/// inflate the raw `Complete` count with wrong paths; this discounts them.
fn sound_complete(sim: &Sim, results: &[revtr_suite::revtr::RevtrResult]) -> usize {
    let auditor = Auditor::new(sim, EngineConfig::revtr2().registry_only_ip2as);
    results
        .iter()
        .filter(|r| r.status == Status::Complete && auditor.audit(r).failures().next().is_none())
        .count()
}

#[test]
fn scenario_profiles_are_worker_invariant_and_seed_pure() {
    // Every adversarial profile draws its behavior purely from stable
    // entity keys (AS ids, addresses, attempt indices) under per-profile
    // salts, and the hardened engine's quarantine windows ride the same
    // merge-barrier machinery as the stop sets — so a hostile campaign,
    // stock or hardened, must stitch bit-identical paths at any dispatch
    // worker count, and a rerun on a fresh identical sim must reproduce
    // them exactly (seed purity).
    for seed in SEEDS {
        for profile in ScenarioProfile::ALL {
            let mut cfg = base_cfg();
            cfg.scenario = ScenarioConfig::profile_at(profile, profile.default_severity());
            let sim = Sim::build(cfg.clone(), seed);
            for harden in [false, true] {
                let base: Vec<Fingerprint> = run_scenario_arm(&sim, harden, 1)
                    .iter()
                    .map(fingerprint)
                    .collect();
                for workers in [4usize, 16] {
                    let arm: Vec<Fingerprint> = run_scenario_arm(&sim, harden, workers)
                        .iter()
                        .map(fingerprint)
                        .collect();
                    assert_arms_identical(
                        &format!("{} harden={harden} w{workers}", profile.name()),
                        seed,
                        &base,
                        &arm,
                    );
                }
                let fresh_sim = Sim::build(cfg.clone(), seed);
                let rerun: Vec<Fingerprint> = run_scenario_arm(&fresh_sim, harden, 1)
                    .iter()
                    .map(fingerprint)
                    .collect();
                assert_arms_identical(
                    &format!("{} harden={harden} rerun", profile.name()),
                    seed,
                    &base,
                    &rerun,
                );
            }
        }
    }
}

#[test]
fn hardening_never_loses_sound_coverage_under_scenarios() {
    // Under every adversarial profile, hardening may trade raw completions
    // for rejected fabrications, but the *audited-sound* completion count
    // — requests answered with a path that replays clean against ground
    // truth — must never drop below the stock engine's.
    for seed in SEEDS {
        for profile in ScenarioProfile::ALL {
            let mut cfg = base_cfg();
            cfg.scenario = ScenarioConfig::profile_at(profile, profile.default_severity());
            let sim = Sim::build(cfg, seed);
            let stock = sound_complete(&sim, &run_scenario_arm(&sim, false, 4));
            let hardened = sound_complete(&sim, &run_scenario_arm(&sim, true, 4));
            assert!(
                hardened >= stock,
                "{} (seed {seed}): hardening lost sound coverage: {hardened} < {stock}",
                profile.name()
            );
        }
    }
}

#[test]
fn degraded_open_loop_campaigns_are_dispatch_worker_invariant() {
    // The admission layer's open-loop path (token buckets, bounded
    // queues, the degradation ladder) must inherit the engine's
    // worker-invariance: a flash-crowd campaign that sheds, degrades,
    // and recovers has to produce bit-identical per-arrival outcomes,
    // per-class accounting, and ladder-transition logs across dispatch
    // workers {1, 4, 16} — and the degraded results must still audit
    // clean (zero AS-unsound paths) against the ground-truth oracle.
    use revtr_suite::eval::loadtest::{self, LoadtestConfig, Pattern};
    for seed in SEEDS {
        let report = loadtest::smoke_seeded(seed, &LoadtestConfig::new(Pattern::FlashCrowd));
        assert!(
            report.determinism_failures.is_empty(),
            "seed {seed}: {:?}",
            report.determinism_failures
        );
        let bronze = report.arms[0]
            .classes
            .iter()
            .find(|c| c.name == "bronze")
            .expect("bronze class reported");
        assert!(
            bronze.stepdowns > 0 && bronze.served_by_level[1..].iter().sum::<u64>() > 0,
            "seed {seed}: the arm never actually served degraded \
             (stepdowns {}, served {:?})",
            bronze.stepdowns,
            bronze.served_by_level
        );
        let unsound = report
            .derived
            .iter()
            .find(|(k, _)| k == "audit.as_unsound")
            .map(|(_, v)| *v)
            .expect("audit derived present");
        assert_eq!(unsound, 0.0, "seed {seed}: degraded paths audit unsound");
    }
}

#[test]
fn flash_crowd_sheds_only_bronze_while_gold_holds_slo() {
    // The must-fire protection property: a 10× flash crowd on the bronze
    // portal must shed — but only from bronze, with gold and silver
    // untouched, gold goodput at its SLO floor, and the ladder fully
    // recovered by end of run. `report.pass()` folds in the whole
    // judgment; the explicit asserts document what must fire.
    use revtr_suite::eval::loadtest::{self, LoadtestConfig, Pattern};
    for seed in SEEDS {
        let report = loadtest::smoke_seeded(seed, &LoadtestConfig::new(Pattern::FlashCrowd));
        assert!(report.pass(), "seed {seed}:\n{}", report.render());
        let class = |name: &str| {
            report.arms[0]
                .classes
                .iter()
                .find(|c| c.name == name)
                .cloned()
                .expect("class reported")
        };
        let (gold, silver, bronze) = (class("gold"), class("silver"), class("bronze"));
        assert!(bronze.shed_total() > 0, "seed {seed}: overload never shed");
        assert_eq!(gold.shed_total(), 0, "seed {seed}: gold shed");
        assert_eq!(silver.shed_total(), 0, "seed {seed}: silver shed");
        assert!(
            gold.goodput_ratio() >= 0.98,
            "seed {seed}: gold goodput {:.4}",
            gold.goodput_ratio()
        );
        assert_eq!(
            bronze.final_level, 0,
            "seed {seed}: ladder never recovered (level {})",
            bronze.final_level
        );
    }
}

#[test]
fn atlas_shrink_is_coverage_monotone_and_accuracy_stable() {
    for seed in SEEDS {
        let sim = Sim::build(base_cfg(), seed);

        // The premise: the smaller pool is a strict subset (prefix) of the
        // larger one, so shrinking only *removes* atlas traces.
        let big_pool = select_atlas_probes(&sim, 100, 6);
        let small_pool = select_atlas_probes(&sim, 30, 6);
        assert!(small_pool.len() < big_pool.len());
        assert_eq!(&big_pool[..small_pool.len()], &small_pool[..]);

        let big = run_arm(&sim, &Arm::baseline());
        let small = run_arm(
            &sim,
            &Arm {
                atlas_pool: 30,
                ..Arm::baseline()
            },
        );

        // Coverage may only drop...
        let complete =
            |fps: &[Fingerprint]| fps.iter().filter(|(s, _)| *s == Status::Complete).count();
        assert!(
            complete(&small) <= complete(&big),
            "shrinking the atlas increased coverage (seed {seed}): {} > {}",
            complete(&small),
            complete(&big)
        );

        // ...and accuracy never does: both arms still audit clean.
        let auditor = Auditor::new(&sim, EngineConfig::revtr2().registry_only_ip2as);
        for pool_n in [100usize, 30] {
            let prober = Prober::new(&sim);
            let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
            let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
            let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
            let pool = select_atlas_probes(&sim, pool_n, 6);
            let mut cfg = EngineConfig::revtr2();
            cfg.atlas_size = pool.len();
            let sys = RevtrSystem::new(prober, cfg, vps, ingress, pool);
            let (src, dests) = workload(&sim, 24);
            sys.register_source(src);
            for &d in &dests {
                let r = sys.measure(d, src);
                let audit = auditor.audit(&r);
                let first_failure = audit.failures().next();
                if let Some(f) = first_failure {
                    panic!(
                        "pool {pool_n}, seed {seed}: {} -> {} hop {} ({}): {:?}",
                        r.dst, r.src, f.index, f.kind, f.verdict
                    );
                }
            }
        }
    }
}
