//! Cross-crate integration: the full pipeline — simulator → probing →
//! ingress DB → atlas → engine → service — validated against the oracle.

use revtr_suite::aliasing::Ip2As;
use revtr_suite::atlas::select_atlas_probes;
use revtr_suite::netsim::{Addr, Sim, SimConfig};
use revtr_suite::probing::Prober;
use revtr_suite::revtr::{EngineConfig, RevtrSystem, Status};
use revtr_suite::service::{RateLimits, RevtrService};
use revtr_suite::vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn full_stack(sim: &Sim, cfg: EngineConfig) -> RevtrSystem<'_> {
    let prober = Prober::new(sim);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 4);
    let mut cfg = cfg;
    cfg.atlas_size = 40;
    RevtrSystem::new(prober, cfg, vps, ingress, pool)
}

fn destinations(sim: &Sim, n: usize) -> Vec<Addr> {
    sim.topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .take(n)
        .collect()
}

#[test]
fn complete_reverse_paths_are_sound_against_the_oracle() {
    let sim = Sim::build(SimConfig::tiny(), 71);
    let sys = full_stack(&sim, EngineConfig::revtr2());
    let oracle = sim.oracle();
    let src = sim.topo().vp_sites[0].host;
    let (mut complete, mut sound) = (0, 0);
    for dst in destinations(&sim, 25) {
        let r = sys.measure(dst, src);
        if !r.complete() {
            continue;
        }
        complete += 1;
        let truth = oracle.true_as_path(dst, src).expect("connected");
        let mut measured: Vec<_> = r.addrs().filter_map(|a| oracle.true_as_of(a)).collect();
        measured.dedup();
        if measured.iter().all(|a| truth.contains(a)) {
            sound += 1;
        }
    }
    assert!(complete >= 10, "only {complete} complete paths");
    assert!(
        sound * 10 >= complete * 9,
        "{sound}/{complete} AS-sound paths"
    );
}

#[test]
fn the_trust_policy_separates_the_two_systems() {
    let sim = Sim::build(SimConfig::tiny(), 72);
    let sys1 = full_stack(&sim, EngineConfig::revtr1());
    let sys2 = full_stack(&sim, EngineConfig::revtr2());
    let src = sim.topo().vp_sites[1].host;
    let mut v1_assumptions = 0u32;
    let mut v2_aborts = 0u32;
    for dst in destinations(&sim, 40) {
        let r1 = sys1.measure(dst, src);
        v1_assumptions += r1.stats.assumed_symmetric;
        let r2 = sys2.measure(dst, src);
        assert_eq!(r2.stats.assumed_interdomain, 0);
        if r2.status == Status::AbortedInterdomain {
            v2_aborts += 1;
            // 2.0 aborted where 1.0 would have guessed; the result still
            // reports the partial path.
            assert!(!r2.hops.is_empty());
        }
    }
    // The symmetry machinery must actually fire somewhere on this
    // workload, otherwise the comparison is vacuous.
    assert!(
        v1_assumptions > 0 || v2_aborts > 0,
        "no measurement ever needed a symmetry decision — workload too easy"
    );
}

#[test]
fn service_layer_composes_with_the_engine() {
    let sim = Sim::build(SimConfig::tiny(), 73);
    let service = RevtrService::new(full_stack(&sim, EngineConfig::revtr2()));
    let key = service.add_user("ops", RateLimits::default());
    let src = sim.topo().vp_sites[0].host;
    service.add_source(key, src).expect("bootstrap");
    let pairs: Vec<(Addr, Addr)> = destinations(&sim, 10)
        .into_iter()
        .map(|d| (d, src))
        .collect();
    let serial: Vec<_> = pairs
        .iter()
        .map(|&(d, s)| service.request(key, d, s).expect("served"))
        .collect();
    let stats = service.store().stats();
    assert_eq!(stats.total, serial.len());
    assert!(stats.complete > 0);
}

#[test]
fn parallel_campaign_equals_serial_results() {
    let sim = Sim::build(SimConfig::tiny(), 74);
    let service = RevtrService::new(full_stack(&sim, EngineConfig::revtr2()));
    let key = service.add_user("mapper", RateLimits::default());
    let src = sim.topo().vp_sites[2].host;
    service.add_source(key, src).expect("bootstrap");
    // Pre-warm the atlas and caches so serial/parallel start identical.
    let pairs: Vec<(Addr, Addr)> = destinations(&sim, 12)
        .into_iter()
        .map(|d| (d, src))
        .collect();
    let parallel = service.batch(key, &pairs, 6).expect("parallel campaign");
    let serial = service.batch(key, &pairs, 1).expect("serial campaign");
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.dst, s.dst);
        // With warm caches, the measured paths agree.
        assert_eq!(
            p.addrs().collect::<Vec<_>>(),
            s.addrs().collect::<Vec<_>>(),
            "parallel/serial divergence for {}",
            p.dst
        );
    }
}

#[test]
fn ip2as_and_oracle_agree_away_from_borders() {
    let sim = Sim::build(SimConfig::tiny(), 75);
    let ip2as = Ip2As::new(&sim);
    let oracle = sim.oracle();
    // Host addresses and loopbacks map identically in the registry and the
    // ground truth; only interdomain link interfaces may disagree.
    for pe in sim.topo().prefixes.iter().take(30) {
        let h = sim.host_addrs(pe.id).next().expect("hosts");
        assert_eq!(ip2as.map(h), oracle.true_as_of(h));
    }
    for r in sim.topo().routers.iter().take(50) {
        assert_eq!(ip2as.map(r.loopback), oracle.true_as_of(r.loopback));
    }
}

#[test]
fn churn_changes_routes_but_not_reachability() {
    // Boost the churn rate so a simulated week shows movement even on a
    // tiny topology (default churn is calibrated for the staleness study).
    let mut cfg = SimConfig::tiny();
    cfg.behavior.churn_per_hour = 0.05;
    let sim = Sim::build(cfg, 76);
    let prober = Prober::new(&sim);
    let src = sim.topo().vp_sites[0].host;
    let dests = destinations(&sim, 30);
    let before: Vec<_> = dests
        .iter()
        .map(|&d| prober.traceroute_fresh(src, d).map(|t| t.hops))
        .collect();
    // A week of heavy churn.
    for _ in 0..24 * 7 {
        sim.advance_hours(1.0);
    }
    let mut changed = 0;
    for (i, &d) in dests.iter().enumerate() {
        let after = prober.traceroute_fresh(src, d).map(|t| t.hops);
        assert_eq!(after.is_some(), before[i].is_some(), "reachability flapped");
        if after != before[i] {
            changed += 1;
        }
    }
    assert!(changed > 0, "a week of churn changed no path");
}
