//! Concurrency: one `RevtrSystem` shared across threads must behave like a
//! serial one — same results, consistent counters, no deadlocks.

use revtr_suite::atlas::select_atlas_probes;
use revtr_suite::netsim::{Addr, Sim, SimConfig};
use revtr_suite::probing::Prober;
use revtr_suite::revtr::{EngineConfig, RevtrSystem};
use revtr_suite::vpselect::{Heuristics, IngressDb};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn stack(sim: &Sim) -> RevtrSystem<'_> {
    let prober = Prober::new(sim);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 6);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 40;
    RevtrSystem::new(prober, cfg, vps, ingress, pool)
}

fn dests(sim: &Sim, n: usize) -> Vec<Addr> {
    sim.topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .take(n)
        .collect()
}

#[test]
fn concurrent_measurements_match_serial_with_warm_caches() {
    let sim = Sim::build(SimConfig::tiny(), 91);
    let sys = stack(&sim);
    let src = sim.topo().vp_sites[0].host;
    sys.register_source(src);
    let ds = dests(&sim, 24);

    // Warm run (serial) to populate every cache.
    let serial: Vec<_> = ds.iter().map(|&d| sys.measure(d, src)).collect();

    // Concurrent run over the same pairs.
    let results: Vec<parking_lot_stub::Slot> = (0..ds.len())
        .map(|_| parking_lot_stub::Slot::new())
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..6 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ds.len() {
                    break;
                }
                results[i].set(sys.measure(ds[i], src));
            });
        }
    });

    for (i, s) in serial.iter().enumerate() {
        let c = results[i].get();
        assert_eq!(c.status, s.status, "status diverged for {}", ds[i]);
        assert_eq!(
            c.addrs().collect::<Vec<_>>(),
            s.addrs().collect::<Vec<_>>(),
            "path diverged for {}",
            ds[i]
        );
    }
}

#[test]
fn concurrent_source_registration_is_idempotent() {
    let sim = Sim::build(SimConfig::tiny(), 92);
    let sys = stack(&sim);
    let src = sim.topo().vp_sites[1].host;
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| sys.register_source(src));
        }
    });
    assert_eq!(sys.sources(), vec![src]);
    assert!(!sys.atlas(src).traces.is_empty());
}

/// One small campaign on a fresh, identically-seeded stack: a serial warm
/// pass over all pairs, then a measured pass over the same pairs with
/// `workers` threads. Returns the measured pass's per-request
/// (status, path, probe counts), in input order.
///
/// The warm pass pins down cache attribution: on a cold cache, requests
/// share cacheable keys (non-spoofed RR probes of common reverse hops),
/// so *which request* pays for a shared probe depends on worker
/// interleaving. With caches warm, every cacheable probe hits and the
/// remaining probes are a pure per-request function of the simulator —
/// the probe-count snapshots must then be identical for any worker
/// count. Churn is disabled because its flush points depend on how
/// virtual time partitions across workers.
fn campaign(
    workers: usize,
    seed: u64,
) -> Vec<(
    revtr_suite::revtr::Status,
    Vec<Addr>,
    revtr_suite::revtr::ProbeDelta,
)> {
    let mut cfg = SimConfig::tiny();
    cfg.behavior.churn_per_hour = 0.0;
    let sim = Sim::build(cfg, seed);
    let sys = stack(&sim);
    let srcs: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).take(6).collect();
    for &s in &srcs {
        sys.register_source(s);
    }
    let ds = dests(&sim, srcs.len());
    let pairs: Vec<(Addr, Addr)> = ds.into_iter().zip(srcs).collect();

    for &(d, s) in &pairs {
        let _ = sys.measure(d, s);
    }

    let slots: Vec<parking_lot_stub::Slot> = (0..pairs.len())
        .map(|_| parking_lot_stub::Slot::new())
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let (d, s) = pairs[i];
                slots[i].set(sys.measure(d, s));
            });
        }
    });
    slots
        .iter()
        .map(|slot| {
            let r = slot.get();
            (r.status, r.addrs().collect(), r.stats.probes)
        })
        .collect()
}

#[test]
fn campaign_results_are_worker_count_invariant() {
    // The same campaign serially and with 8 workers: every request must
    // produce the identical status, path, and probe-count snapshot
    // (durations are wall-clock-dependent and excluded by construction).
    let serial = campaign(1, 7);
    let parallel = campaign(8, 7);
    assert_eq!(serial.len(), parallel.len());
    assert!(serial.len() >= 4, "campaign too small to be meaningful");
    let mut probes_seen = 0;
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "status diverged for request {i}");
        assert_eq!(s.1, p.1, "path diverged for request {i}");
        assert_eq!(s.2, p.2, "probe counts diverged for request {i}");
        probes_seen += s.2.ping + s.2.rr + s.2.spoof_rr + s.2.ts + s.2.spoof_ts;
    }
    assert!(probes_seen > 0, "warm campaign sent no probes at all");
    // And serial runs are bit-reproducible.
    assert_eq!(serial, campaign(1, 7));
}

mod parking_lot_stub {
    use std::sync::Mutex;

    pub struct Slot(Mutex<Option<revtr_suite::revtr::RevtrResult>>);

    impl Slot {
        pub fn new() -> Slot {
            Slot(Mutex::new(None))
        }
        pub fn set(&self, v: revtr_suite::revtr::RevtrResult) {
            *self.0.lock().expect("slot lock") = Some(v);
        }
        pub fn get(&self) -> revtr_suite::revtr::RevtrResult {
            self.0
                .lock()
                .expect("slot lock")
                .clone()
                .expect("slot filled")
        }
    }
}
