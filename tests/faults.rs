//! End-to-end guarantees of the fault-injection layer:
//!
//! * fault draws are a pure function of the seed — two fresh systems over
//!   identically-configured simulators measure byte-identical campaigns;
//! * `FaultConfig::default()` is inert — with faults off, retry budgets
//!   change nothing: results *and* probe accounting are byte-identical to
//!   a no-retry run, so every pre-fault-model seed still reproduces.

use revtr_suite::atlas::select_atlas_probes;
use revtr_suite::netsim::sim::PktMeta;
use revtr_suite::netsim::{Addr, FaultConfig, RouterId, Sim, SimConfig};
use revtr_suite::probing::{ProbeLoss, Prober, RetryPolicy};
use revtr_suite::revtr::{EngineConfig, RevtrResult, RevtrSystem};
use revtr_suite::vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn full_stack(sim: &Sim, retry: RetryPolicy) -> RevtrSystem<'_> {
    let prober = Prober::new(sim).with_retry_policy(retry);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 4);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 40;
    RevtrSystem::new(prober, cfg, vps, ingress, pool)
}

fn destinations(sim: &Sim, n: usize) -> Vec<Addr> {
    sim.topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .take(n)
        .collect()
}

/// A serial campaign over a fresh full stack (single-threaded, so the
/// virtual clock and fault nonces advance deterministically).
fn campaign(sim: &Sim, retry: RetryPolicy) -> Vec<RevtrResult> {
    let sys = full_stack(sim, retry);
    let src = sim.topo().vp_sites[0].host;
    destinations(sim, 20)
        .into_iter()
        .map(|d| sys.measure(d, src))
        .collect()
}

/// Byte-level fingerprints: serialize every field of every result —
/// status, hops with provenance, batches, probe deltas (incl. retries and
/// losses), virtual durations.
fn fingerprint(results: &[RevtrResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable"))
        .collect()
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let mut cfg = SimConfig::tiny();
    cfg.faults.probe_loss = 0.3;
    cfg.faults.vp_flap_rate = 0.2;
    cfg.faults.icmp_rate_limit_pps = 100.0;
    let a = campaign(&Sim::build(cfg.clone(), 91), RetryPolicy::uniform(3));
    let b = campaign(&Sim::build(cfg.clone(), 91), RetryPolicy::uniform(3));
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same seed, same faults, different campaigns"
    );
    // The faults actually fired (otherwise the test is vacuous)…
    let lost: u64 = a.iter().map(|r| r.stats.probes.lost).sum();
    assert!(lost > 0, "fault config injected no losses");
    // …and the draws are seed-sensitive: a different seed sees different
    // results (topology and faults both reseed).
    let c = campaign(&Sim::build(cfg, 92), RetryPolicy::uniform(3));
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed 92 mirrored seed 91");
}

#[test]
fn default_fault_config_and_retry_budgets_are_inert() {
    let cfg = SimConfig::tiny();
    assert_eq!(cfg.faults, FaultConfig::default());
    assert!(
        !cfg.faults.any_enabled(),
        "defaults must disable all faults"
    );

    // Same seed, fault-free: a generous retry budget must change nothing —
    // identical paths, identical probe counts, identical virtual time.
    // This is the byte-identity guarantee that keeps pre-existing seeds
    // reproducible with the fault model compiled in.
    let plain = campaign(&Sim::build(cfg.clone(), 93), RetryPolicy::default());
    let retried = campaign(&Sim::build(cfg, 93), RetryPolicy::uniform(3));
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&retried),
        "retry budget changed a fault-free campaign"
    );
    for r in plain.iter().chain(&retried) {
        assert_eq!(r.stats.probes.retries, 0, "retry issued with no faults");
        assert_eq!(r.stats.probes.lost, 0, "loss recorded with no faults");
    }
}

/// Walk outcomes as one bool per destination (link maintenance is the only
/// fault class that can silently eat a packet inside `Sim::walk`).
fn reachability(sim: &Sim, src: Addr, dests: &[Addr]) -> Vec<bool> {
    dests.iter().map(|&d| sim.ping(src, d).is_some()).collect()
}

#[test]
fn maintenance_schedule_is_frozen_within_a_window() {
    let mut cfg = SimConfig::tiny();
    cfg.behavior.churn_per_hour = 0.0;
    cfg.faults.link_maintenance_rate = 0.5;
    cfg.faults.link_maintenance_window_hours = 6.0;
    let sim = Sim::build(cfg, 17);
    let src = sim.topo().vp_sites[0].host;
    let dests = destinations(&sim, 20);

    // Within one window the link states are constant: walks at t = 0, 2
    // and 5.9 hours see the identical schedule, however often they re-run.
    let early = reachability(&sim, src, &dests);
    assert_eq!(
        early,
        reachability(&sim, src, &dests),
        "same instant replays"
    );
    sim.advance_hours(2.0);
    assert_eq!(early, reachability(&sim, src, &dests));
    sim.advance_hours(3.9);
    assert_eq!(early, reachability(&sim, src, &dests));

    // Across window boundaries the schedule re-draws: at rate 0.5 some
    // path must flip within a few windows (and not everything goes dark).
    let mut per_window = vec![early];
    for _ in 0..6 {
        sim.advance_hours(6.0);
        per_window.push(reachability(&sim, src, &dests));
    }
    assert!(
        per_window.windows(2).any(|w| w[0] != w[1]),
        "no path ever flipped across maintenance windows"
    );
    assert!(
        per_window.iter().all(|v| v.iter().any(|&b| b)),
        "maintenance blacked out every destination"
    );
}

#[test]
fn walks_snapshot_maintenance_state_atomically() {
    // A maintenance window opening while a walk is in progress must not
    // half-apply: `Sim::walk` reads virtual time once, so even with a
    // concurrent thread advancing the clock across window boundaries,
    // every observed path equals some *pure* single-window path — never a
    // hybrid stitched from two schedules.
    let mut cfg = SimConfig::tiny();
    cfg.behavior.churn_per_hour = 0.0;
    cfg.faults.link_maintenance_rate = 0.4;
    cfg.faults.link_maintenance_window_hours = 1.0;
    let seed = 18;

    // Pick a (start router, destination) whose path actually changes
    // across windows, then record the pure path for windows 0..=20.
    let probe = |sim: &Sim, start: RouterId, dst: Addr| -> Option<Vec<RouterId>> {
        sim.walk(start, dst, &PktMeta::plain(dst, 5))
            .map(|w| w.hops.iter().map(|h| h.router).collect())
    };
    let reference = Sim::build(cfg.clone(), seed);
    let start = reference.topo().vp_sites[0].router;
    let dests = destinations(&reference, 20);
    let mut allowed: Vec<Vec<Option<Vec<RouterId>>>> = vec![Vec::new(); dests.len()];
    for w in 0..=20 {
        for (i, &d) in dests.iter().enumerate() {
            allowed[i].push(probe(&reference, start, d));
        }
        if w < 20 {
            reference.advance_hours(1.0);
        }
    }
    assert!(
        allowed
            .iter()
            .any(|per_w| { per_w.iter().any(|p| p != &per_w[0]) }),
        "maintenance never rerouted or dropped any probed path"
    );

    // Fresh sim, same seed: faults are seed-pure, so the window schedule
    // above is *the* schedule. Walk continuously while another thread
    // sweeps the clock through all 20 boundaries.
    let live = Sim::build(cfg, seed);
    std::thread::scope(|scope| {
        let advancer = scope.spawn(|| {
            for _ in 0..200 {
                live.advance_hours(0.1);
                std::thread::yield_now();
            }
        });
        while !advancer.is_finished() {
            for (i, &d) in dests.iter().enumerate() {
                let got = probe(&live, start, d);
                assert!(
                    allowed[i].contains(&got),
                    "walk to {d} produced a path matching no single window: {got:?}"
                );
            }
        }
        advancer.join().expect("advancer panicked");
    });
}

#[test]
fn unanswered_probes_are_never_retried() {
    // Genuine unresponsiveness is deterministic in-sim: re-sending cannot
    // change the outcome, so the budget must not be spent. This held at
    // introduction and is pinned here against regressions in the retry
    // loop (an early draft retried every `None`, quadrupling campaign
    // probe counts against unresponsive destinations).
    let sim = Sim::build(SimConfig::tiny(), 95);
    let p = Prober::new(&sim)
        .with_cache_enabled(false)
        .with_retry_policy(RetryPolicy::uniform(5));
    let vp = sim.topo().vp_sites[0].host;
    let dark = Addr::new(10, 9, 9, 9); // unallocated: never answers
    let before = p.counters().snapshot();
    assert_eq!(p.rr_ping_outcome(vp, dark), Err(ProbeLoss::Unanswered));
    assert_eq!(
        p.ts_ping_outcome(vp, dark, &[dark]),
        Err(ProbeLoss::Unanswered)
    );
    assert!(p.ping(vp, dark).is_none());
    assert!(p.traceroute_fresh(vp, dark).is_none());
    let d = p.counters().snapshot().since(&before);
    assert_eq!(d.rr, 1, "unanswered RR re-sent");
    assert_eq!(d.ts, 1, "unanswered TS re-sent");
    assert_eq!(d.ping, 1, "unanswered ping re-sent");
    assert_eq!(d.traceroutes, 1, "unanswered traceroute re-sent");
    assert_eq!(d.retries, 0, "budget spent on a deterministic non-answer");
    assert_eq!(d.lost, 0, "no faults enabled, nothing to lose");
}

#[test]
fn retry_meta_counters_reconcile_across_a_faulted_campaign() {
    // Bookkeeping identities under faults, per probe category:
    //   sends  == fresh probes + re-sends        (kind == calls + retries)
    //   losses == re-sends + unrecovered         (lost == retries + transient)
    // Every re-send is provoked by exactly one prior fault loss, and every
    // loss either provokes a re-send or exhausts the budget (surfacing as
    // `ProbeLoss::Transient` / a `transient` batch flag).
    let mut cfg = SimConfig::tiny();
    cfg.faults.probe_loss = 0.35;
    let sim = Sim::build(cfg, 96);
    let p = Prober::new(&sim)
        .with_cache_enabled(false)
        .with_retry_policy(RetryPolicy::uniform(4));
    let vps = &sim.topo().vp_sites;
    let responsive: Vec<Addr> = destinations(&sim, 30);

    // Unicast RR leg.
    let before = p.counters().snapshot();
    let mut transient = 0u64;
    for &d in &responsive {
        match p.rr_ping_outcome(vps[0].host, d) {
            Ok(_) | Err(ProbeLoss::Unanswered) => {}
            Err(ProbeLoss::Transient) => transient += 1,
        }
    }
    let d = p.counters().snapshot().since(&before);
    assert_eq!(d.rr, responsive.len() as u64 + d.retries, "sends identity");
    assert_eq!(d.lost, d.retries + transient, "losses identity");
    assert!(d.lost > 0, "loss rate 0.35 injected nothing (vacuous)");

    // Spoofed batch leg: same identities from the per-pair flags.
    let pairs: Vec<(Addr, Addr)> = responsive
        .iter()
        .enumerate()
        .map(|(i, &d)| (vps[1 + i % (vps.len() - 1)].host, d))
        .collect();
    let before = p.counters().snapshot();
    let batch = p.spoofed_rr_batch(&pairs, vps[0].host);
    let d = p.counters().snapshot().since(&before);
    let still_transient = batch.transient.iter().filter(|&&t| t).count() as u64;
    assert_eq!(d.spoof_rr, pairs.len() as u64 + d.retries, "sends identity");
    assert_eq!(d.lost, d.retries + still_transient, "losses identity");
    assert!(
        batch.timeouts >= 1 && batch.timeouts <= 4,
        "round count outside the budget: {}",
        batch.timeouts
    );
}
