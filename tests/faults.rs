//! End-to-end guarantees of the fault-injection layer:
//!
//! * fault draws are a pure function of the seed — two fresh systems over
//!   identically-configured simulators measure byte-identical campaigns;
//! * `FaultConfig::default()` is inert — with faults off, retry budgets
//!   change nothing: results *and* probe accounting are byte-identical to
//!   a no-retry run, so every pre-fault-model seed still reproduces.

use revtr_suite::atlas::select_atlas_probes;
use revtr_suite::netsim::{Addr, FaultConfig, Sim, SimConfig};
use revtr_suite::probing::{Prober, RetryPolicy};
use revtr_suite::revtr::{EngineConfig, RevtrResult, RevtrSystem};
use revtr_suite::vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn full_stack(sim: &Sim, retry: RetryPolicy) -> RevtrSystem<'_> {
    let prober = Prober::new(sim).with_retry_policy(retry);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(sim, 100, 4);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 40;
    RevtrSystem::new(prober, cfg, vps, ingress, pool)
}

fn destinations(sim: &Sim, n: usize) -> Vec<Addr> {
    sim.topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .take(n)
        .collect()
}

/// A serial campaign over a fresh full stack (single-threaded, so the
/// virtual clock and fault nonces advance deterministically).
fn campaign(sim: &Sim, retry: RetryPolicy) -> Vec<RevtrResult> {
    let sys = full_stack(sim, retry);
    let src = sim.topo().vp_sites[0].host;
    destinations(sim, 20)
        .into_iter()
        .map(|d| sys.measure(d, src))
        .collect()
}

/// Byte-level fingerprints: serialize every field of every result —
/// status, hops with provenance, batches, probe deltas (incl. retries and
/// losses), virtual durations.
fn fingerprint(results: &[RevtrResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable"))
        .collect()
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let mut cfg = SimConfig::tiny();
    cfg.faults.probe_loss = 0.3;
    cfg.faults.vp_flap_rate = 0.2;
    cfg.faults.icmp_rate_limit_pps = 100.0;
    let a = campaign(&Sim::build(cfg.clone(), 91), RetryPolicy::uniform(3));
    let b = campaign(&Sim::build(cfg.clone(), 91), RetryPolicy::uniform(3));
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same seed, same faults, different campaigns"
    );
    // The faults actually fired (otherwise the test is vacuous)…
    let lost: u64 = a.iter().map(|r| r.stats.probes.lost).sum();
    assert!(lost > 0, "fault config injected no losses");
    // …and the draws are seed-sensitive: a different seed sees different
    // results (topology and faults both reseed).
    let c = campaign(&Sim::build(cfg, 92), RetryPolicy::uniform(3));
    assert_ne!(fingerprint(&a), fingerprint(&c), "seed 92 mirrored seed 91");
}

#[test]
fn default_fault_config_and_retry_budgets_are_inert() {
    let cfg = SimConfig::tiny();
    assert_eq!(cfg.faults, FaultConfig::default());
    assert!(
        !cfg.faults.any_enabled(),
        "defaults must disable all faults"
    );

    // Same seed, fault-free: a generous retry budget must change nothing —
    // identical paths, identical probe counts, identical virtual time.
    // This is the byte-identity guarantee that keeps pre-existing seeds
    // reproducible with the fault model compiled in.
    let plain = campaign(&Sim::build(cfg.clone(), 93), RetryPolicy::default());
    let retried = campaign(&Sim::build(cfg, 93), RetryPolicy::uniform(3));
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&retried),
        "retry budget changed a fault-free campaign"
    );
    for r in plain.iter().chain(&retried) {
        assert_eq!(r.stats.probes.retries, 0, "retry issued with no faults");
        assert_eq!(r.stats.probes.lost, 0, "loss recorded with no faults");
    }
}
