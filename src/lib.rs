//! Umbrella crate re-exporting the full revtr 2.0 reproduction suite.
//!
//! Downstream users normally depend on the individual crates; this package
//! exists to host the workspace-level integration tests (`tests/`) and the
//! runnable examples (`examples/`).

pub use revtr;
pub use revtr_aliasing as aliasing;
pub use revtr_atlas as atlas;
pub use revtr_audit as audit;
pub use revtr_eval as eval;
pub use revtr_netsim as netsim;
pub use revtr_probing as probing;
pub use revtr_service as service;
pub use revtr_telemetry as telemetry;
pub use revtr_vpselect as vpselect;
