//! Quickstart: build a simulated Internet, stand up revtr 2.0, and measure
//! one reverse path — the "measure the path *back* from a host you don't
//! control" pitch of the paper, end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use revtr::{EngineConfig, HopMethod, RevtrSystem};
use revtr_atlas::select_atlas_probes;
use revtr_netsim::{Sim, SimConfig};
use revtr_probing::Prober;
use revtr_vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn main() {
    // 1. A small deterministic Internet: ~77 ASes, valley-free BGP,
    //    routers with realistic Record Route stamping quirks.
    let sim = Sim::build(SimConfig::tiny(), 2022);
    println!("simulated Internet: {sim:?}\n");

    // 2. The measurement substrate and the background services: the
    //    ingress database (which vantage point is closest to each prefix's
    //    ingresses, §4.3) and a pool of Atlas-like probes for traceroute
    //    atlases (Q1).
    let prober = Prober::new(&sim);
    let vps: Vec<_> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(&sim, 150, 7);

    // 3. revtr 2.0 itself.
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 60;
    let system = RevtrSystem::new(prober.clone(), cfg, vps.clone(), ingress, pool);

    // 4. Pick a source we control (a vantage point site) and an arbitrary
    //    destination we do NOT control, then measure the path FROM the
    //    destination BACK to the source.
    let src = vps[0];
    let dst = sim
        .topo()
        .prefixes
        .iter()
        .find_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .expect("some responsive destination exists");

    println!("reverse traceroute from {dst} back to {src}:\n");
    let result = system.measure(dst, src);
    for (i, hop) in result.hops.iter().enumerate() {
        let addr = hop
            .addr
            .map(|a| a.to_string())
            .unwrap_or_else(|| "*".to_string());
        let star = if hop.suspicious_gap_before {
            " (* gap)"
        } else {
            ""
        };
        let how = match hop.method {
            HopMethod::Destination => "destination",
            HopMethod::AtlasIntersection => "atlas intersection",
            HopMethod::RecordRoute => "record route",
            HopMethod::SpoofedRecordRoute => "spoofed record route",
            HopMethod::Timestamp => "timestamp",
            HopMethod::AssumedSymmetric => "assumed symmetric (intradomain)",
        };
        println!("  {i:2}  {addr:<16} via {how}{star}");
    }
    println!("\nstatus: {:?}", result.status);
    println!(
        "probes: {} option packets ({} spoofed RR), {} batches, {:.1}s virtual",
        result.stats.probes.option_probes(),
        result.stats.probes.spoof_rr,
        result.stats.batches,
        result.stats.duration_s,
    );
}
