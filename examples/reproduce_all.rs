//! Regenerate every table and figure of the paper's evaluation.
//!
//! Run with: `cargo run --release --example reproduce_all [smoke|standard]`
//!
//! `standard` (the default) runs the full-scale reproduction — minutes of
//! work; `smoke` runs a fast scaled-down pass. Text output goes to stdout;
//! per-artefact TSVs are written to `target/eval/`.

use revtr_eval::context::EvalScale;
use revtr_eval::reproduce;
use std::path::Path;
use std::time::Instant;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "standard".into());
    let scale = match mode.as_str() {
        "smoke" => EvalScale::smoke(),
        "standard" => EvalScale::standard(),
        other => {
            eprintln!("unknown mode {other:?}; use `smoke` or `standard`");
            std::process::exit(2);
        }
    };
    eprintln!("running the {mode} reproduction: {scale:?}");
    let t0 = Instant::now();
    let rep = reproduce::run(scale);
    eprintln!("experiments done in {:?}", t0.elapsed());

    println!("{}", rep.render());

    let dir = Path::new("target/eval");
    match rep.save_tsvs(dir) {
        Ok(()) => eprintln!("TSVs written to {}", dir.display()),
        Err(e) => eprintln!("could not write TSVs: {e}"),
    }
}
