//! The §6.2 asymmetry survey: bidirectional measurements (forward
//! traceroute + revtr 2.0 reverse traceroute), path symmetry at AS and
//! router granularity, and the ASes most involved in asymmetric routing.
//!
//! Run with: `cargo run --release --example asymmetry_survey`

use revtr_eval::context::{EvalContext, EvalScale};
use revtr_eval::{asymmetry, Figure};
use revtr_netsim::SimConfig;
use revtr_vpselect::Heuristics;
use std::sync::Arc;

fn main() {
    let mut scale = EvalScale::smoke();
    scale.prefix_sample = 120;
    scale.n_revtrs = 300;
    scale.atlas_size = 80;
    let ctx = EvalContext::new(SimConfig::era_2020(), scale);
    println!("simulated Internet: {:?}", ctx.sim);

    let prober = ctx.prober();
    let ingress = Arc::new(ctx.build_ingress(&prober, Heuristics::FULL));
    let workload = ctx.workload();
    println!("bidirectional pairs attempted: {}\n", workload.len());

    let report = asymmetry::run(&ctx, &ingress, &workload);
    println!(
        "pairs with complete forward + reverse paths: {}",
        report.pairs.len()
    );
    println!(
        "AS-symmetric fraction: {:.2}  (paper: 0.53 — 'only 53% of paths are \
         symmetric even at the coarse AS granularity')\n",
        report.as_symmetric_fraction()
    );

    let median_router = {
        let mut v: Vec<f64> = report.pairs.iter().map(|p| p.frac_router).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v.get(v.len() / 2).copied().unwrap_or(f64::NAN)
    };
    println!(
        "median router-level overlap: {median_router:.2}  (paper: half of reverse \
         traceroutes include <28% of forward routers)\n"
    );

    let figs: Vec<Figure> = vec![report.fig8a(), report.fig13(), report.fig14()];
    for f in figs {
        println!("{}", f.render());
    }
    println!("{}", report.table7(10).render());
}
