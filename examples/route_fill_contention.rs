//! Cold route-cache fills under worker contention — the single-flight
//! experiment of PR 1.
//!
//! Every round takes a fresh salt (as a churn epoch does) and has all
//! workers walk the same destination list, so each `(dst, salt)` key is
//! requested by every worker while cold. Without single-flight, racing
//! workers each run the valley-free BFS for the same key and the last
//! insert wins — up to `workers`× duplicated compute, which costs real
//! wall time even on one CPU. With `StripedMap::get_or_compute`, exactly
//! one BFS runs per key and the rest wait on the flight.
//!
//! ```text
//! cargo run --release --example route_fill_contention [workers] [rounds]
//! ```

use revtr_suite::netsim::{Sim, SimConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("workers must be an integer"))
        .unwrap_or(8)
        .max(1);
    let rounds: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("rounds must be an integer"))
        .unwrap_or(20)
        .max(1);

    eprintln!("building era_2020 simulator...");
    let sim = Sim::build(SimConfig::era_2020(), 1);
    let dsts: Vec<_> = sim.topo().ases.iter().map(|a| a.id).take(64).collect();

    let salt = AtomicU64::new(0xC0FFEE);
    let t0 = Instant::now();
    for _ in 0..rounds {
        let s = salt.fetch_add(1, Ordering::Relaxed);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    for &d in &dsts {
                        std::hint::black_box(sim.routes(d, s));
                    }
                });
            }
        });
    }
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "workers={workers} rounds={rounds} dsts={} cold_fills={} wall_s={wall:.3} fills/s={:.0}",
        dsts.len(),
        rounds * dsts.len() as u64,
        (rounds * dsts.len() as u64) as f64 / wall,
    );
}
