//! Atlas maintenance (Q1, Appx. D.2): build a source's traceroute atlas,
//! watch route churn make intersections stale over a virtual day, and run
//! the daily refresh that keeps useful traces while replacing the rest.
//!
//! Run with: `cargo run --release --example atlas_maintenance`

use revtr::{EngineConfig, RevtrSystem};
use revtr_atlas::select_atlas_probes;
use revtr_netsim::{Addr, Sim, SimConfig};
use revtr_probing::Prober;
use revtr_vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn main() {
    // Crank churn so a single demo day shows movement.
    let mut cfg = SimConfig::tiny();
    cfg.behavior.churn_per_hour = 0.05;
    let sim = Sim::build(cfg, 2024);

    let prober = Prober::new(&sim);
    let vps: Vec<Addr> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(&sim, 150, 11);
    let mut ecfg = EngineConfig::revtr2();
    ecfg.atlas_size = 60;
    let system = RevtrSystem::new(prober.clone(), ecfg, vps.clone(), ingress, pool);

    let src = vps[0];
    system.register_source(src);
    let atlas0 = system.atlas(src);
    println!(
        "bootstrapped atlas for {src}: {} traces, {} indexed addresses",
        atlas0.traces.len(),
        atlas0.index_size()
    );

    // A day of measurements under churn.
    let dests: Vec<Addr> = sim
        .topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .collect();
    let mut intersected = 0usize;
    let mut stale = 0usize;
    for (i, &d) in dests.iter().enumerate() {
        sim.advance_hours(24.0 / dests.len() as f64);
        let r = system.measure(d, src);
        let (Some(t), Some(h)) = (r.stats.intersected_trace, r.stats.intersected_hop) else {
            continue;
        };
        intersected += 1;
        // Verify the intersected trace against a fresh re-measurement.
        let atlas = system.atlas(src);
        let trace = &atlas.traces[t];
        if let (Some(hop_addr), Some(fresh)) =
            (trace.hops[h], prober.traceroute_fresh(trace.vp, src))
        {
            if !fresh.responsive_hops().any(|x| x == hop_addr) {
                stale += 1;
                println!(
                    "  [{i:3}] stale intersection: hop {hop_addr} no longer on the path from {}",
                    trace.vp
                );
            }
        }
    }
    println!(
        "\nday summary: {intersected} measurements intersected the atlas, {stale} used a stale trace"
    );

    // The daily refresh: intersected traces keep their probes, the rest are
    // replaced with fresh random ones.
    system.refresh_atlas(src);
    let atlas1 = system.atlas(src);
    let kept: usize = atlas1
        .traces
        .iter()
        .filter(|t| atlas0.traces.iter().any(|o| o.vp == t.vp))
        .count();
    println!(
        "after refresh: {} traces ({kept} probes retained from yesterday), {} indexed addresses",
        atlas1.traces.len(),
        atlas1.index_size()
    );
}
