//! The §6.1 traffic-engineering case study: announce an anycast prefix
//! from two sites, observe per-AS catchments (what revtr 2.0's reverse
//! paths reveal), and steer routes with poisoning / no-export actions.
//!
//! Run with: `cargo run --release --example traffic_engineering`

use revtr_eval::context::{EvalContext, EvalScale};
use revtr_eval::traffic_eng::{self, share};
use revtr_netsim::SimConfig;

fn main() {
    let mut scale = EvalScale::smoke();
    scale.prefix_sample = 120;
    let ctx = EvalContext::new(SimConfig::era_2020(), scale);
    println!("simulated Internet: {:?}\n", ctx.sim);

    let report = traffic_eng::run(&ctx);
    println!("{}", report.fig7().render());

    let sc = &report.steering;
    println!(
        "steering: poisoned {} on the far site's announcement;",
        sc.manipulated
    );
    println!(
        "  near-site share {:.1}% -> {:.1}%, mean AS-path {:.2} -> {:.2}",
        100.0 * share(&sc.before, sc.sites[0]),
        100.0 * share(&sc.after, sc.sites[0]),
        sc.before.mean_path_len,
        sc.after.mean_path_len,
    );

    let b = &report.balancing;
    println!(
        "\nbalancing: no-exported the dominant site via {};",
        b.manipulated
    );
    println!(
        "  split {:.1}% : {:.1}%  ->  {:.1}% : {:.1}%",
        100.0 * share(&b.before, b.sites[0]),
        100.0 * share(&b.before, b.sites[1]),
        100.0 * share(&b.after, b.sites[0]),
        100.0 * share(&b.after, b.sites[1]),
    );
    println!(
        "\n(The paper's instance: Cogent routes shifted 73.3% -> 86.5% toward \
         NEU, and the AMS-IX split improved from 91.2%:8.8% to 60.5%:39.5%.)"
    );
}
