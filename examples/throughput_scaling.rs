//! Standalone runner for the implementation-throughput experiment
//! (`eval::throughput`): 1/2/4/8-worker wall-clock revtrs/s plus cache
//! effectiveness, without the full `reproduce_all` campaign.
//!
//! ```text
//! cargo run --release --example throughput_scaling [smoke|medium|standard] [repeat]
//! ```
//!
//! `repeat` (default 1) cycles the workload that many times per run —
//! use it to stretch wall times past the noise floor when comparing
//! builds (e.g. `standard 5` measures 10,000 revtrs per worker count).
//!
//! `medium` (default) runs the paper-era topology at a reduced workload —
//! a couple of minutes in release mode — and is the configuration whose
//! numbers are recorded in EXPERIMENTS.md.

use revtr_suite::eval::context::{EvalContext, EvalScale};
use revtr_suite::eval::throughput;
use revtr_suite::netsim::SimConfig;
use revtr_suite::vpselect::Heuristics;
use std::sync::Arc;

fn main() {
    let scale_name = std::env::args().nth(1).unwrap_or_else(|| "medium".into());
    let (cfg, scale) = match scale_name.as_str() {
        "smoke" => (SimConfig::tiny(), EvalScale::smoke()),
        "medium" => (
            SimConfig::era_2020(),
            EvalScale {
                prefix_sample: 300,
                n_revtrs: 400,
                atlas_size: 120,
                atlas_pool: 600,
                n_sources: 4,
                seed: 1,
            },
        ),
        "standard" => (SimConfig::era_2020(), EvalScale::standard()),
        other => {
            eprintln!("unknown scale {other:?}: use smoke|medium|standard");
            std::process::exit(2);
        }
    };

    eprintln!("building simulator + ingress db ({scale_name})...");
    let ctx = EvalContext::new(cfg, scale);
    let prober = ctx.prober();
    let ingress = Arc::new(ctx.build_ingress(&prober, Heuristics::FULL));
    let repeat: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("repeat must be a positive integer"))
        .unwrap_or(1)
        .max(1);
    let base = ctx.workload();
    let workload: Vec<_> = base
        .iter()
        .copied()
        .cycle()
        .take(base.len() * repeat)
        .collect();
    eprintln!(
        "workload: {} revtrs ({} pairs x {repeat})",
        workload.len(),
        base.len()
    );

    let report = throughput::run(&ctx, &ingress, &workload);
    println!("{}", report.table().render());
}
