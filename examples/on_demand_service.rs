//! The revtr 2.0 *service* (Appx. A): users sign up, register their own
//! hosts as sources, and request reverse traceroutes under rate limits;
//! results are archived. Also demonstrates the NDT speed-test hook and a
//! parallel batch campaign.
//!
//! Run with: `cargo run --release --example on_demand_service`

use revtr::EngineConfig;
use revtr_atlas::select_atlas_probes;
use revtr_netsim::{Addr, Sim, SimConfig};
use revtr_probing::Prober;
use revtr_service::{RateLimits, RevtrService};
use revtr_vpselect::{Heuristics, IngressDb};
use std::sync::Arc;

fn main() {
    let sim = Sim::build(SimConfig::tiny(), 99);
    let prober = Prober::new(&sim);
    let vps: Vec<_> = sim.topo().vp_sites.iter().map(|v| v.host).collect();
    let prefixes: Vec<_> = sim.topo().prefixes.iter().map(|p| p.id).collect();
    let ingress = Arc::new(IngressDb::build(&prober, &vps, &prefixes, Heuristics::FULL));
    let pool = select_atlas_probes(&sim, 120, 5);
    let mut cfg = EngineConfig::revtr2();
    cfg.atlas_size = 50;
    let system = revtr::RevtrSystem::new(prober, cfg, vps.clone(), ingress, pool);
    let service = RevtrService::new(system);

    // A researcher signs up and registers a source they control. The
    // bootstrap checks the source receives RR packets and builds its
    // traceroute atlas (~15 virtual minutes in the real system).
    let key = service.add_user(
        "researcher",
        RateLimits {
            max_parallel: 8,
            max_per_day: 10_000,
        },
    );
    let source = vps[0];
    service.add_source(key, source).expect("bootstrap succeeds");
    println!("registered source {source} for user 'researcher'");

    // On-demand requests (the REST/gRPC path).
    let dests: Vec<Addr> = sim
        .topo()
        .prefixes
        .iter()
        .filter_map(|pe| {
            sim.host_addrs(pe.id)
                .find(|&a| sim.behavior().host_rr_responsive(a))
        })
        .take(12)
        .collect();
    let r = service
        .request(key, dests[0], source)
        .expect("request served");
    println!(
        "\non-demand: {} -> {}: {:?}, {} hops",
        r.dst,
        r.src,
        r.status,
        r.hops.len()
    );

    // A parallel batch campaign (topology-mapping use case, §3).
    let pairs: Vec<(Addr, Addr)> = dests.iter().map(|&d| (d, source)).collect();
    let results = service.batch(key, &pairs, 4).expect("campaign runs");
    let complete = results.iter().filter(|r| r.complete()).count();
    println!(
        "batch campaign: {}/{} complete over 4 workers",
        complete,
        results.len()
    );

    // The NDT hook: a speed-test client triggers a complementary reverse
    // traceroute to the serving M-Lab node.
    let ndt = service.on_ndt_test(dests[1], vps[1]).expect("load permits");
    println!(
        "NDT-triggered: client {} -> server {}: {:?}",
        ndt.dst, ndt.src, ndt.status
    );

    // The archive, as it would land in cloud storage.
    let stats = service.store().stats();
    println!(
        "\narchive: {} results ({} complete, {} aborted, {} unresponsive, {} with assumptions)",
        stats.total, stats.complete, stats.aborted, stats.unresponsive, stats.with_assumption
    );
    let json = service.store().export_json();
    println!("JSON export: {} bytes", json.len());
}
